(* Tests for MicroCreator: specs, the XML description language, the
   19-pass pipeline, plugins, emission and the launcher ABI. *)

open Mt_isa
open Mt_creator

let check = Alcotest.(check string)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* The paper's Figure 6 kernel (with the Figure 9 pass counter). *)
let fig6_xml =
  {|
<kernel name="loadstore">
  <instruction>
    <operation>movaps</operation>
    <memory>
      <register><name>r1</name></register>
      <offset>0</offset>
    </memory>
    <register>
      <phyName>%xmm</phyName>
      <min>0</min>
      <max>8</max>
    </register>
    <swap_after_unroll/>
  </instruction>
  <unrolling><min>1</min><max>8</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
    <offset>16</offset>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information><label>L6</label><test>jge</test></branch_information>
</kernel>
|}

let fig6_spec () =
  match Description.of_string fig6_xml with
  | Ok spec -> spec
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Spec validation                                                     *)
(* ------------------------------------------------------------------ *)

let minimal_spec =
  {
    Spec.name = "t";
    instructions =
      [ Spec.instr (Spec.Fixed Insn.NOP) [] ];
    unroll_min = 1;
    unroll_max = 1;
    inductions = [];
    branch = None;
  }

let test_spec_validate_ok () =
  check_bool "fig6 valid" true (Result.is_ok (Spec.validate (fig6_spec ())));
  check_bool "minimal valid" true (Result.is_ok (Spec.validate minimal_spec))

let expect_invalid spec =
  check_bool "invalid" true (Result.is_error (Spec.validate spec))

let test_spec_validate_failures () =
  expect_invalid { minimal_spec with Spec.instructions = [] };
  expect_invalid { minimal_spec with Spec.unroll_min = 0 };
  expect_invalid { minimal_spec with Spec.unroll_max = 0 };
  expect_invalid
    { minimal_spec with
      Spec.instructions = [ Spec.instr ~repeat:(3, 1) (Spec.Fixed Insn.NOP) [] ] };
  expect_invalid
    { minimal_spec with
      Spec.instructions = [ Spec.instr (Spec.Move_bytes 5) [] ] };
  expect_invalid
    { minimal_spec with
      Spec.instructions = [ Spec.instr (Spec.Op_choice []) [] ] };
  (* A branch without a last induction. *)
  expect_invalid
    { minimal_spec with Spec.branch = Some { Spec.label = "L"; test = Insn.Jcc Insn.GE } };
  (* A branch whose test is not conditional. *)
  expect_invalid
    {
      minimal_spec with
      Spec.inductions = [ Spec.induction ~last:true (Spec.Named "r0") [ -1 ] ];
      branch = Some { Spec.label = "L"; test = Insn.JMP };
    };
  (* Duplicate induction registers. *)
  expect_invalid
    {
      minimal_spec with
      Spec.inductions =
        [ Spec.induction (Spec.Named "r1") [ 1 ]; Spec.induction (Spec.Named "r1") [ 2 ] ];
    }

(* ------------------------------------------------------------------ *)
(* Description language                                                *)
(* ------------------------------------------------------------------ *)

let test_description_parses_fig6 () =
  let spec = fig6_spec () in
  check "name" "loadstore" spec.Spec.name;
  check_int "one instruction" 1 (List.length spec.Spec.instructions);
  check_int "three inductions" 3 (List.length spec.Spec.inductions);
  check_int "unroll max" 8 spec.Spec.unroll_max;
  match spec.Spec.instructions with
  | [ instr ] ->
    check_bool "swap after" true instr.Spec.swap_after_unroll;
    check_bool "movaps" true (instr.Spec.op = Spec.Fixed Insn.MOVAPS);
    (match instr.Spec.operands with
    | [ Spec.S_mem { base = Spec.Named "r1"; offset = 0 }; Spec.S_reg (Spec.Xmm_rotation { rmin = 0; rmax = 8 }) ] -> ()
    | _ -> Alcotest.fail "unexpected operand shapes")
  | _ -> Alcotest.fail "expected one instruction"

let test_description_inductions () =
  let spec = fig6_spec () in
  match spec.Spec.inductions with
  | [ r1; r0; eax ] ->
    check_bool "r1 increment" true (r1.Spec.increments = [ 16 ]);
    check_int "r1 offset" 16 r1.Spec.ind_offset;
    check_bool "r0 linked" true (r0.Spec.linked_to = Some "r1");
    check_bool "r0 last" true r0.Spec.is_last;
    check_bool "eax unaffected" true eax.Spec.unaffected_by_unroll;
    check_bool "eax physical" true (eax.Spec.ind_reg = Spec.Phys (Reg.gpr32 Reg.RAX))
  | _ -> Alcotest.fail "expected three inductions"

let test_description_roundtrip () =
  let spec = fig6_spec () in
  match Description.of_string (Description.to_string spec) with
  | Error msg -> Alcotest.fail msg
  | Ok again -> check_bool "round-trip" true (again = spec)

let test_description_choices () =
  let xml =
    {|<kernel name="c">
        <instruction>
          <operation><choice>movss</choice><choice>movaps</choice></operation>
          <memory><register><name>p</name></register></memory>
          <register><phyName>%xmm0</phyName></register>
          <immediate><choice>1</choice><choice>2</choice></immediate>
        </instruction>
      </kernel>|}
  in
  match Description.of_string xml with
  | Error msg -> Alcotest.fail msg
  | Ok spec -> (
    match spec.Spec.instructions with
    | [ i ] ->
      check_bool "op choice" true (i.Spec.op = Spec.Op_choice [ Insn.MOVSS; Insn.MOVAPS ]);
      check_bool "imm choice" true
        (List.exists (fun o -> o = Spec.S_imm_choice [ 1; 2 ]) i.Spec.operands)
    | _ -> Alcotest.fail "one instruction expected")

let test_description_move_bytes () =
  let xml =
    {|<kernel name="m">
        <instruction>
          <move_bytes>16</move_bytes>
          <memory><register><name>p</name></register></memory>
          <register><phyName>%xmm</phyName><min>0</min><max>4</max></register>
        </instruction>
      </kernel>|}
  in
  match Description.of_string xml with
  | Error msg -> Alcotest.fail msg
  | Ok spec -> (
    match spec.Spec.instructions with
    | [ i ] -> check_bool "move bytes" true (i.Spec.op = Spec.Move_bytes 16)
    | _ -> Alcotest.fail "one instruction expected")

let test_description_errors () =
  let bad xml =
    match Description.of_string xml with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected rejection: " ^ xml)
  in
  bad "<notkernel/>";
  bad "<kernel><instruction/></kernel>";
  bad {|<kernel><instruction><operation>frobnicate</operation></instruction></kernel>|};
  bad {|<kernel><instruction><operation>nop</operation></instruction><unrolling><min>0</min><max>8</max></unrolling></kernel>|};
  bad {|<kernel><instruction><operation>nop</operation><repeat><min>1</min></repeat></instruction></kernel>|};
  bad "not xml at all"

(* ------------------------------------------------------------------ *)
(* Pipeline structure                                                  *)
(* ------------------------------------------------------------------ *)

let test_nineteen_passes () =
  check_int "pass count" 19 (List.length Passes.pass_names);
  check_bool "order" true
    (Passes.pass_names
    = [ "validate-spec"; "canonicalize"; "instruction-repetition";
        "instruction-selection"; "move-semantics"; "stride-selection";
        "immediate-selection"; "operand-swap-pre"; "unrolling";
        "operand-swap-post"; "register-rotation"; "lowering";
        "induction-insertion"; "branch-generation"; "register-allocation";
        "finalize-abi"; "peephole"; "alignment-directives"; "deduplicate" ])

let test_pipeline_manipulation () =
  let pipe = Passes.default_pipeline () in
  let dummy = Pass.make ~name:"dummy" ~description:"noop" (fun _ v -> [ v ]) in
  let with_replaced = Pass.replace pipe "peephole" dummy in
  check_bool "replaced" true (Pass.find with_replaced "peephole" = None);
  check_bool "dummy present" true (Pass.find with_replaced "dummy" <> None);
  let removed = Pass.remove pipe "peephole" in
  check_int "one fewer" 18 (List.length removed);
  let before = Pass.insert_before pipe "unrolling" dummy in
  let names = Pass.names before in
  let rec idx name k = function
    | [] -> -1
    | x :: rest -> if x = name then k else idx name (k + 1) rest
  in
  check_bool "inserted before unrolling" true
    (idx "dummy" 0 names = idx "unrolling" 0 names - 1);
  let after = Pass.insert_after pipe "unrolling" dummy in
  let names = Pass.names after in
  check_bool "inserted after unrolling" true
    (idx "dummy" 0 names = idx "unrolling" 0 names + 1)

let test_pipeline_missing_anchor () =
  let pipe = Passes.default_pipeline () in
  let dummy = Pass.make ~name:"d" ~description:"" (fun _ v -> [ v ]) in
  check_bool "replace raises" true
    (try ignore (Pass.replace pipe "nope" dummy); false with Not_found -> true);
  check_bool "insert raises" true
    (try ignore (Pass.insert_before pipe "nope" dummy); false with Not_found -> true)

let test_gate_disables_pass () =
  (* Gating off the unrolling pass leaves a single unroll factor. *)
  let pipe = Pass.set_gate (Passes.default_pipeline ()) "unrolling" (fun _ _ -> false) in
  let variants = Creator.generate ~pipeline:pipe (fig6_spec ()) in
  check_bool "all unroll 1" true
    (List.for_all (fun v -> v.Variant.unroll = 1) variants);
  (* 2^1 swap choices only. *)
  check_int "two variants" 2 (List.length variants)

(* ------------------------------------------------------------------ *)
(* Generation counts (the paper's claims)                              *)
(* ------------------------------------------------------------------ *)

let test_510_variants () =
  let variants = Creator.generate (fig6_spec ()) in
  (* Sum over u of 2^u for u in 1..8 = 510. *)
  check_int "510 variants" 510 (List.length variants)

let test_unroll_population () =
  let variants = Creator.generate (fig6_spec ()) in
  List.iter
    (fun u ->
      let n = List.length (List.filter (fun v -> v.Variant.unroll = u) variants) in
      check_int (Printf.sprintf "2^%d variants at unroll %d" u u) (1 lsl u) n)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_max_variants_cap () =
  let ctx = { Pass.default_context with Pass.max_variants = 100 } in
  let variants = Creator.generate ~ctx (fig6_spec ()) in
  check_bool "capped" true (List.length variants <= 100)

let test_ids_unique () =
  let variants = Creator.generate (fig6_spec ()) in
  let ids = List.map Variant.id variants in
  check_int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

(* ------------------------------------------------------------------ *)
(* Individual passes                                                   *)
(* ------------------------------------------------------------------ *)

let generate_with spec = Creator.generate spec

let test_repetition_pass () =
  let spec =
    {
      minimal_spec with
      Spec.instructions = [ Spec.instr ~repeat:(1, 3) (Spec.Fixed Insn.NOP) [] ];
    }
  in
  let variants = generate_with spec in
  check_int "three repeat choices" 3 (List.length variants);
  let sizes =
    List.sort compare
      (List.map
         (fun v ->
           List.length
             (List.filter (fun i -> i.Insn.op = Insn.NOP) (Insn.insns (Variant.concrete_body v))))
         variants)
  in
  check_bool "1,2,3 copies" true (sizes = [ 1; 2; 3 ])

let test_instruction_selection_pass () =
  let spec =
    {
      minimal_spec with
      Spec.instructions =
        [
          Spec.instr
            (Spec.Op_choice [ Insn.MOVSS; Insn.MOVSD; Insn.MOVAPS; Insn.MOVAPD ])
            [
              Spec.S_mem { base = Spec.Named "p"; offset = 0 };
              Spec.S_reg (Spec.Phys (Reg.xmm 0));
            ];
        ];
    }
  in
  let variants = generate_with spec in
  check_int "four opcode choices" 4 (List.length variants)

let test_random_selection_mode () =
  let spec =
    {
      minimal_spec with
      Spec.instructions =
        [
          Spec.instr
            (Spec.Op_choice [ Insn.MOVSS; Insn.MOVSD; Insn.MOVAPS; Insn.MOVAPD ])
            [
              Spec.S_mem { base = Spec.Named "p"; offset = 0 };
              Spec.S_reg (Spec.Phys (Reg.xmm 0));
            ];
        ];
    }
  in
  let ctx = { Pass.default_context with Pass.random_selection = Some 2 } in
  let variants = Creator.generate ~ctx spec in
  check_int "sampled to 2" 2 (List.length variants);
  (* Deterministic for a fixed seed. *)
  let again = Creator.generate ~ctx spec in
  check_bool "same sample" true
    (List.map Variant.id variants = List.map Variant.id again)

let test_move_semantics_pass () =
  let spec pattern =
    {
      minimal_spec with
      Spec.instructions =
        [
          Spec.instr (Spec.Move_bytes pattern)
            [
              Spec.S_mem { base = Spec.Named "p"; offset = 0 };
              Spec.S_reg (Spec.Phys (Reg.xmm 0));
            ];
        ];
    }
  in
  check_int "16 bytes: 4 encodings" 4 (List.length (generate_with (spec 16)));
  check_int "8 bytes: 2 encodings" 2 (List.length (generate_with (spec 8)));
  check_int "4 bytes: 1 encoding" 1 (List.length (generate_with (spec 4)))

let test_move_semantics_scalar_split_offsets () =
  let spec =
    {
      minimal_spec with
      Spec.instructions =
        [
          Spec.instr (Spec.Move_bytes 16)
            [
              Spec.S_mem { base = Spec.Named "p"; offset = 0 };
              Spec.S_reg (Spec.Phys (Reg.xmm 0));
            ];
        ];
    }
  in
  let variants = generate_with spec in
  let scalar =
    List.find
      (fun v -> List.mem_assoc "mv0" v.Variant.decisions
                && List.assoc "mv0" v.Variant.decisions = "4movss")
      variants
  in
  let movss_disps =
    List.filter_map
      (fun i ->
        if i.Insn.op = Insn.MOVSS then
          List.find_map
            (function Operand.Mem m -> Some m.Operand.disp | _ -> None)
            i.Insn.operands
        else None)
      (Insn.insns (Variant.concrete_body scalar))
  in
  check_bool "4 pieces at 0,4,8,12" true (movss_disps = [ 0; 4; 8; 12 ])

let test_stride_selection_pass () =
  let spec =
    {
      minimal_spec with
      Spec.instructions =
        [
          Spec.instr (Spec.Fixed Insn.MOVSS)
            [
              Spec.S_mem { base = Spec.Named "p"; offset = 0 };
              Spec.S_reg (Spec.Phys (Reg.xmm 0));
            ];
        ];
      Spec.inductions = [ Spec.induction ~offset:4 (Spec.Named "p") [ 4; 8; 64 ] ];
    }
  in
  let variants = generate_with spec in
  check_int "three strides" 3 (List.length variants)

let test_immediate_selection_pass () =
  let spec =
    {
      minimal_spec with
      Spec.instructions =
        [
          Spec.instr (Spec.Fixed Insn.ADD)
            [ Spec.S_imm_choice [ 1; 2; 4 ]; Spec.S_reg (Spec.Named "t") ];
        ];
    }
  in
  let variants = generate_with spec in
  check_int "three immediates" 3 (List.length variants)

let test_swap_pre_pass () =
  let spec =
    {
      minimal_spec with
      Spec.instructions =
        [
          Spec.instr ~swap_before:true (Spec.Fixed Insn.MOVAPS)
            [
              Spec.S_mem { base = Spec.Named "p"; offset = 0 };
              Spec.S_reg (Spec.Phys (Reg.xmm 0));
            ];
        ];
      Spec.unroll_min = 2;
      unroll_max = 2;
    }
  in
  let variants = generate_with spec in
  (* Pre-unroll swap: both copies load, or both copies store. *)
  check_int "two whole-kernel variants" 2 (List.length variants);
  List.iter
    (fun v ->
      let insns = Insn.insns (Variant.concrete_body v) in
      let loads = List.filter Mt_isa.Semantics.is_load insns in
      let stores = List.filter Mt_isa.Semantics.is_store insns in
      check_bool "uniform" true (List.length loads = 0 || List.length stores = 0))
    variants

let test_register_rotation () =
  let variants = Creator.generate (fig6_spec ()) in
  let v =
    List.find
      (fun v ->
        v.Variant.unroll = 3 && List.assoc "swB" v.Variant.decisions = "LLL")
      variants
  in
  let xmms =
    List.filter_map
      (fun i ->
        List.find_map
          (function Operand.Reg (Reg.Xmm n) -> Some n | _ -> None)
          i.Insn.operands)
      (Insn.insns (Variant.concrete_body v))
  in
  check_bool "rotates xmm0,1,2" true (xmms = [ 0; 1; 2 ])

let test_unroll_offsets () =
  let variants = Creator.generate (fig6_spec ()) in
  let v =
    List.find
      (fun v ->
        v.Variant.unroll = 3 && List.assoc "swB" v.Variant.decisions = "LLL")
      variants
  in
  let disps =
    List.filter_map
      (fun i ->
        if i.Insn.op = Insn.MOVAPS then
          List.find_map
            (function Operand.Mem m -> Some m.Operand.disp | _ -> None)
            i.Insn.operands
        else None)
      (Insn.insns (Variant.concrete_body v))
  in
  check_bool "displacements 0,16,32" true (disps = [ 0; 16; 32 ])

let test_induction_scaling () =
  let variants = Creator.generate (fig6_spec ()) in
  let v =
    List.find
      (fun v ->
        v.Variant.unroll = 3 && List.assoc "swB" v.Variant.decisions = "LLL")
      variants
  in
  let insns = Insn.insns (Variant.concrete_body v) in
  (* Pointer induction: add $48 (16 x 3); counter: sub $3 (1 x 3);
     pass counter: add $1 (not affected by unroll). *)
  check_bool "add 48" true
    (List.exists (fun i -> i.Insn.op = Insn.ADD && List.mem (Operand.Imm 48) i.Insn.operands) insns);
  check_bool "sub 3" true
    (List.exists (fun i -> i.Insn.op = Insn.SUB && List.mem (Operand.Imm 3) i.Insn.operands) insns);
  check_bool "add 1 to eax" true
    (List.exists
       (fun i ->
         i.Insn.op = Insn.ADD
         && List.mem (Operand.Imm 1) i.Insn.operands
         && List.exists
              (function Operand.Reg r -> Reg.equal r (Reg.gpr32 Reg.RAX) | _ -> false)
              i.Insn.operands)
       insns)

let test_branch_structure () =
  let variants = Creator.generate (fig6_spec ()) in
  let v = List.hd variants in
  let body = Variant.concrete_body v in
  check_bool "has loop label" true
    (List.exists (function Insn.Label "L6" -> true | _ -> false) body);
  let insns = Insn.insns body in
  check_bool "ends with jge then ret" true
    (match List.rev insns with
    | { Insn.op = Insn.RET; _ } :: { Insn.op = Insn.Jcc Insn.GE; _ } :: _ -> true
    | _ -> false)

let test_register_allocation_convention () =
  let map = Passes.allocation_map (fig6_spec ()) in
  check_bool "counter r0 -> rdi" true
    (List.assoc "r0" map = Reg.gpr64 Reg.RDI);
  check_bool "pointer r1 -> rsi" true
    (List.assoc "r1" map = Reg.gpr64 Reg.RSI)

let test_no_logical_registers_left () =
  let variants = Creator.generate (fig6_spec ()) in
  List.iter
    (fun v ->
      List.iter
        (fun i ->
          List.iter
            (fun operand ->
              List.iter
                (fun r ->
                  check_bool "physical" true (Reg.is_physical r))
                (Operand.registers_read operand))
            i.Insn.operands)
        (Insn.insns (Variant.concrete_body v)))
    variants

let test_abi_metadata () =
  let variants = Creator.generate (fig6_spec ()) in
  let v =
    List.find
      (fun v -> v.Variant.unroll = 3 && List.assoc "swB" v.Variant.decisions = "LLS")
      variants
  in
  match v.Variant.abi with
  | None -> Alcotest.fail "no abi"
  | Some abi ->
    check_bool "counter" true (Reg.equal abi.Abi.counter (Reg.gpr64 Reg.RDI));
    check_int "step" (-3) abi.Abi.counter_step;
    check_int "unroll" 3 abi.Abi.unroll;
    check_int "loads (LLS)" 2 abi.Abi.loads_per_pass;
    check_int "stores (LLS)" 1 abi.Abi.stores_per_pass;
    check_int "bytes per pass" 48 abi.Abi.bytes_per_pass;
    check_bool "pass counter is rax" true
      (match abi.Abi.pass_counter with
      | Some r -> Reg.equal r (Reg.gpr64 Reg.RAX)
      | None -> false);
    (match abi.Abi.pointers with
    | [ (r, step) ] ->
      check_bool "pointer rsi" true (Reg.equal r (Reg.gpr64 Reg.RSI));
      check_int "pointer step" 48 step
    | _ -> Alcotest.fail "expected one pointer")

let test_abi_helpers () =
  let variants = Creator.generate (fig6_spec ()) in
  let v = List.find (fun v -> v.Variant.unroll = 4) variants in
  let abi = Option.get v.Variant.abi in
  check_int "passes for 64 KiB" 1024 (Abi.passes_for_bytes abi (64 * 1024));
  check_int "trip for 10 passes" 36 (Abi.trip_count_for_passes abi 10);
  check_int "payload" 4 (Abi.payload_per_pass abi)

let test_prologue_zeroes_pass_counter () =
  let variants = Creator.generate (fig6_spec ()) in
  let v = List.hd variants in
  let insns = Insn.insns (Variant.concrete_body v) in
  match List.find_opt (fun i -> i.Insn.op = Insn.XOR) insns with
  | Some i ->
    check_bool "xor eax, eax" true
      (List.for_all
         (function Operand.Reg r -> Reg.equal r (Reg.gpr32 Reg.RAX) | _ -> false)
         i.Insn.operands)
  | None -> Alcotest.fail "no zeroing prologue"

let test_deduplicate () =
  (* Two identical opcode choices produce one surviving variant. *)
  let spec =
    {
      minimal_spec with
      Spec.instructions =
        [
          Spec.instr
            (Spec.Op_choice [ Insn.MOVSS; Insn.MOVSS ])
            [
              Spec.S_mem { base = Spec.Named "p"; offset = 0 };
              Spec.S_reg (Spec.Phys (Reg.xmm 0));
            ];
        ];
    }
  in
  check_int "deduped" 1 (List.length (generate_with spec))

let run_single_pass pass variant =
  match pass.Pass.transform Pass.default_context variant with
  | [ v ] -> v
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 variant, got %d" (List.length vs))

let test_peephole_direct () =
  let body =
    [
      Insn.Insn (Insn.make Insn.ADD [ Operand.imm 0; Operand.reg (Reg.gpr64 Reg.RSI) ]);
      Insn.Insn (Insn.make Insn.ADD [ Operand.imm 4; Operand.reg (Reg.gpr64 Reg.RSI) ]);
      Insn.Insn (Insn.make Insn.SUB [ Operand.imm 0; Operand.reg (Reg.gpr64 Reg.RDI) ]);
      Insn.Insn (Insn.make (Insn.Jcc Insn.GE) [ Operand.label "L" ]);
    ]
  in
  let v = { (Variant.of_spec minimal_spec) with Variant.body = Variant.Concrete body } in
  let v' = run_single_pass (Passes.find_pass "peephole") v in
  let ops = List.map (fun i -> Insn.to_string i) (Insn.insns (Variant.concrete_body v')) in
  (* The dead add $0 goes; the flag-feeding sub $0 before the jcc stays. *)
  check_bool "dead zero add removed" true (not (List.mem "add $0, %rsi" ops));
  check_bool "flag-feeding zero sub kept" true (List.mem "sub $0, %rdi" ops);
  check_int "three instructions left" 3 (List.length ops)

let test_canonicalize_direct () =
  let spec =
    { minimal_spec with
      Spec.instructions =
        [ Spec.instr (Spec.Op_choice [ Insn.NOP ]) [];
          Spec.instr (Spec.Fixed Insn.ADD)
            [ Spec.S_imm_choice [ 7 ]; Spec.S_reg (Spec.Named "t") ] ] }
  in
  let v = Variant.of_spec spec in
  let v' = run_single_pass (Passes.find_pass "canonicalize") v in
  match Variant.abstract_body v' with
  | [ a; b ] ->
    check_bool "singleton opcode collapsed" true (a.Spec.op = Spec.Fixed Insn.NOP);
    check_bool "singleton immediate collapsed" true
      (List.mem (Spec.S_imm 7) b.Spec.operands)
  | _ -> Alcotest.fail "two instructions expected"

let test_alignment_directives_direct () =
  let v =
    { (Variant.of_spec minimal_spec) with
      Variant.body = Variant.Concrete [ Insn.Insn (Insn.make Insn.RET []) ] }
  in
  let v' = run_single_pass (Passes.find_pass "alignment-directives") v in
  match Variant.concrete_body v' with
  | Insn.Directive ".text" :: Insn.Directive _ :: Insn.Directive ".align 16" :: Insn.Label _ :: _ -> ()
  | _ -> Alcotest.fail "expected .text/.globl/.align/label header"

(* ------------------------------------------------------------------ *)
(* Plugins                                                             *)
(* ------------------------------------------------------------------ *)

let test_plugin_rewrites_pipeline () =
  Plugin.clear ();
  let module Cap_unroll = struct
    let name = "cap-unroll"

    (* Gate off the post-unroll swap: one variant per unroll factor. *)
    let plugin_init pipeline =
      Pass.set_gate pipeline "operand-swap-post" (fun _ _ -> false)
  end in
  Plugin.register (module Cap_unroll);
  let variants = Creator.generate (fig6_spec ()) in
  check_int "8 variants with plugin" 8 (List.length variants);
  Plugin.clear ();
  let variants = Creator.generate (fig6_spec ()) in
  check_int "510 again after clear" 510 (List.length variants)

let test_plugin_registry () =
  Plugin.clear ();
  let make_plugin name =
    (module struct
      let name = name

      let plugin_init p = p
    end : Plugin.PLUGIN)
  in
  Plugin.register (make_plugin "a");
  Plugin.register (make_plugin "b");
  check_bool "order" true (Plugin.registered () = [ "a"; "b" ]);
  Plugin.register (make_plugin "a");
  check_bool "replace keeps position" true (Plugin.registered () = [ "a"; "b" ]);
  Plugin.unregister "a";
  check_bool "removed" true (Plugin.registered () = [ "b" ]);
  Plugin.clear ();
  check_bool "cleared" true (Plugin.registered () = [])

let test_plugin_can_add_pass () =
  Plugin.clear ();
  let module Nop_injector = struct
    let name = "nop-injector"

    let inject =
      Pass.make ~name:"inject-nop" ~description:"prepend a nop to every kernel"
        (fun _ v ->
          match v.Variant.body with
          | Variant.Concrete body ->
            [ { v with Variant.body = Variant.Concrete (Insn.Insn (Insn.make Insn.NOP []) :: body) } ]
          | Variant.Abstract _ -> [ v ])

    let plugin_init pipeline = Pass.insert_after pipeline "finalize-abi" inject
  end in
  Plugin.register (module Nop_injector);
  let variants = Creator.generate (fig6_spec ()) in
  Plugin.clear ();
  let v = List.hd variants in
  check_bool "nop injected" true
    (List.exists (fun i -> i.Insn.op = Insn.NOP) (Insn.insns (Variant.concrete_body v)))

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let test_assembly_output_shape () =
  let variants = Creator.generate (fig6_spec ()) in
  let v =
    List.find
      (fun v -> v.Variant.unroll = 3 && List.assoc "swB" v.Variant.decisions = "LLL")
      variants
  in
  let asm = Emit.assembly v in
  check_bool "header" true (String.length asm > 0 && String.sub asm 0 1 = "#");
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length asm
      && (String.sub asm i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_bool "has .globl" true (contains ".globl");
  check_bool "has abi header" true (contains "# abi:");
  check_bool "has movaps 32" true (contains "movaps 32(%rsi)");
  check_bool "has add 48" true (contains "add $48, %rsi");
  check_bool "has jge" true (contains "jge L6")

let test_figure8_regression () =
  (* The paper's Figure 8: unroll 3 with a store,load,store
     interleaving — "a kernel three times unrolled, consisting in two
     stores and one load". *)
  let variants = Creator.generate (fig6_spec ()) in
  let v =
    List.find
      (fun v -> v.Variant.unroll = 3 && List.assoc "swB" v.Variant.decisions = "SLS")
      variants
  in
  let body =
    List.map Insn.to_string (Insn.insns (Variant.concrete_body v))
  in
  check_bool "store to 0" true (List.mem "movaps %xmm0, (%rsi)" body);
  check_bool "load from 16" true (List.mem "movaps 16(%rsi), %xmm1" body);
  check_bool "store to 32" true (List.mem "movaps %xmm2, 32(%rsi)" body);
  check_bool "add $48" true (List.mem "add $48, %rsi" body);
  let abi = Option.get v.Variant.abi in
  check_int "two stores" 2 abi.Abi.stores_per_pass;
  check_int "one load" 1 abi.Abi.loads_per_pass

let test_assembly_reparses () =
  let variants = Creator.generate (fig6_spec ()) in
  List.iteri
    (fun idx v ->
      if idx mod 37 = 0 then begin
        let asm = Emit.assembly v in
        match Att.parse_program asm with
        | exception Att.Syntax_error msg -> Alcotest.fail msg
        | program ->
          check_bool "same instruction count" true
            (List.length (Insn.insns program)
            = List.length (Insn.insns (Variant.concrete_body v)))
      end)
    variants

let test_c_output_shape () =
  let variants = Creator.generate (fig6_spec ()) in
  let v = List.hd variants in
  let c = Emit.c_source v in
  let contains needle s =
    let rec go i =
      i + String.length needle <= String.length s
      && (String.sub s i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_bool "function signature" true (contains "int n, void *a0" c);
  check_bool "asm block" true (contains "__asm__ volatile" c);
  check_bool "escaped registers" true (contains "%%rsi" c);
  check_bool "returns iterations" true (contains "return iterations;" c)

let test_write_all () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mt_emit_test" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let spec = { (fig6_spec ()) with Spec.unroll_max = 2 } in
  let variants = Creator.generate spec in
  let paths = Emit.write_all ~dir variants in
  check_int "6 files" 6 (List.length paths);
  List.iter (fun p -> check_bool p true (Sys.file_exists p)) paths;
  List.iter Sys.remove paths

(* Property: random well-formed descriptions flow through the whole
   pipeline: XML round-trip, generation, unique ids, ABI consistency,
   machine-level compilation, and execution of a sample variant. *)
let arbitrary_spec_gen =
  let open QCheck.Gen in
  let* opcode = oneofl Insn.[ MOVSS; MOVSD; MOVAPS; MOVUPS; MOVAPD ] in
  let stride = Mt_isa.Semantics.data_bytes (Insn.make opcode []) in
  (* Alignment-safe stride: the operand width itself. *)
  let* umax = 1 -- 4 in
  let* swap_after = bool in
  let* repeat_hi = 1 -- 2 in
  let* rot = 2 -- 8 in
  let instr =
    Spec.instr ~swap_after
      ~repeat:(1, repeat_hi)
      (Spec.Fixed opcode)
      [
        Spec.S_mem { base = Spec.Named "r1"; offset = 0 };
        Spec.S_reg (Spec.Xmm_rotation { rmin = 0; rmax = rot });
      ]
  in
  return
    {
      Spec.name = "fuzz";
      instructions = [ instr ];
      unroll_min = 1;
      unroll_max = umax;
      inductions =
        [
          Spec.induction ~offset:stride (Spec.Named "r1") [ stride ];
          Spec.induction ~linked_to:"r1" ~last:true (Spec.Named "r0") [ -1 ];
          Spec.induction ~unaffected:true (Spec.Phys (Reg.gpr32 Reg.RAX)) [ 1 ];
        ];
      branch = Some { Spec.label = "L6"; test = Insn.Jcc Insn.GE };
    }

let prop_pipeline_fuzz =
  QCheck.Test.make ~count:40 ~name:"creator: random descriptions survive the whole pipeline"
    (QCheck.make arbitrary_spec_gen) (fun spec ->
      (* 1. The description language round-trips. *)
      (match Description.of_string (Description.to_string spec) with
      | Ok again when again = spec -> ()
      | _ -> QCheck.Test.fail_report "description round-trip");
      let variants = Creator.generate spec in
      if variants = [] then QCheck.Test.fail_report "no variants";
      (* 2. Unique ids. *)
      let ids = List.map Variant.id variants in
      if List.length (List.sort_uniq compare ids) <> List.length ids then
        QCheck.Test.fail_report "duplicate ids";
      (* 3. Every variant compiles and carries a consistent ABI. *)
      List.iter
        (fun v ->
          let abi = match v.Variant.abi with Some a -> a | None -> QCheck.Test.fail_report "no abi" in
          (match Mt_machine.Core.compile (Variant.concrete_body v) with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_report (Mt_machine.Core.error_to_string e));
          let payload = abi.Abi.loads_per_pass + abi.Abi.stores_per_pass in
          if payload <= 0 || payload mod v.Variant.unroll <> 0 then
            QCheck.Test.fail_report "payload not a multiple of the unroll factor")
        variants;
      (* 4. One variant actually runs and counts passes. *)
      let v = List.hd variants in
      let abi = Option.get v.Variant.abi in
      let cfg = Mt_machine.Config.nehalem_x5650_2s in
      let memory = Mt_machine.Memory.create cfg in
      let init =
        (abi.Abi.counter, Abi.trip_count_for_passes abi 16)
        :: List.map (fun (r, _) -> (r, 1 lsl 24)) abi.Abi.pointers
      in
      match Mt_machine.Core.run_program ~init cfg memory (Variant.concrete_body v) with
      | Ok r -> r.Mt_machine.Core.rax = 16
      | Error e -> QCheck.Test.fail_report (Mt_machine.Core.error_to_string e))

(* Property: every generated variant compiles on the machine model. *)
let prop_variants_compile =
  QCheck.Test.make ~count:20 ~name:"creator: every variant compiles for the core"
    QCheck.(int_range 1 8)
    (fun umax ->
      let spec = { (fig6_spec ()) with Spec.unroll_max = umax } in
      let variants = Creator.generate spec in
      List.for_all
        (fun v ->
          match Mt_machine.Core.compile (Variant.concrete_body v) with
          | Ok _ -> true
          | Error _ -> false)
        variants)

let tests =
  [
    Alcotest.test_case "spec validate ok" `Quick test_spec_validate_ok;
    Alcotest.test_case "spec validate failures" `Quick test_spec_validate_failures;
    Alcotest.test_case "description parses fig6" `Quick test_description_parses_fig6;
    Alcotest.test_case "description inductions" `Quick test_description_inductions;
    Alcotest.test_case "description round-trip" `Quick test_description_roundtrip;
    Alcotest.test_case "description choices" `Quick test_description_choices;
    Alcotest.test_case "description move_bytes" `Quick test_description_move_bytes;
    Alcotest.test_case "description errors" `Quick test_description_errors;
    Alcotest.test_case "nineteen passes" `Quick test_nineteen_passes;
    Alcotest.test_case "pipeline manipulation" `Quick test_pipeline_manipulation;
    Alcotest.test_case "pipeline missing anchor" `Quick test_pipeline_missing_anchor;
    Alcotest.test_case "gate disables pass" `Quick test_gate_disables_pass;
    Alcotest.test_case "510 variants (paper claim)" `Quick test_510_variants;
    Alcotest.test_case "2^u variants per unroll group" `Quick test_unroll_population;
    Alcotest.test_case "max-variants cap" `Quick test_max_variants_cap;
    Alcotest.test_case "variant ids unique" `Quick test_ids_unique;
    Alcotest.test_case "repetition pass" `Quick test_repetition_pass;
    Alcotest.test_case "instruction selection" `Quick test_instruction_selection_pass;
    Alcotest.test_case "random selection mode" `Quick test_random_selection_mode;
    Alcotest.test_case "move semantics encodings" `Quick test_move_semantics_pass;
    Alcotest.test_case "move semantics scalar split" `Quick test_move_semantics_scalar_split_offsets;
    Alcotest.test_case "stride selection" `Quick test_stride_selection_pass;
    Alcotest.test_case "immediate selection" `Quick test_immediate_selection_pass;
    Alcotest.test_case "operand swap before unroll" `Quick test_swap_pre_pass;
    Alcotest.test_case "register rotation" `Quick test_register_rotation;
    Alcotest.test_case "unroll displacements" `Quick test_unroll_offsets;
    Alcotest.test_case "induction scaling" `Quick test_induction_scaling;
    Alcotest.test_case "branch structure" `Quick test_branch_structure;
    Alcotest.test_case "register allocation convention" `Quick test_register_allocation_convention;
    Alcotest.test_case "no logical registers remain" `Quick test_no_logical_registers_left;
    Alcotest.test_case "abi metadata" `Quick test_abi_metadata;
    Alcotest.test_case "abi helpers" `Quick test_abi_helpers;
    Alcotest.test_case "prologue zeroes pass counter" `Quick test_prologue_zeroes_pass_counter;
    Alcotest.test_case "deduplicate" `Quick test_deduplicate;
    Alcotest.test_case "peephole (direct)" `Quick test_peephole_direct;
    Alcotest.test_case "canonicalize (direct)" `Quick test_canonicalize_direct;
    Alcotest.test_case "alignment directives (direct)" `Quick test_alignment_directives_direct;
    Alcotest.test_case "plugin rewrites pipeline" `Quick test_plugin_rewrites_pipeline;
    Alcotest.test_case "plugin registry" `Quick test_plugin_registry;
    Alcotest.test_case "plugin can add a pass" `Quick test_plugin_can_add_pass;
    Alcotest.test_case "assembly output shape" `Quick test_assembly_output_shape;
    Alcotest.test_case "Figure 8 regression" `Quick test_figure8_regression;
    Alcotest.test_case "assembly reparses" `Quick test_assembly_reparses;
    Alcotest.test_case "c output shape" `Quick test_c_output_shape;
    Alcotest.test_case "write_all" `Quick test_write_all;
    QCheck_alcotest.to_alcotest prop_variants_compile;
    QCheck_alcotest.to_alcotest prop_pipeline_fuzz;
  ]
