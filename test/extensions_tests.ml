(* Tests for the extension surface: non-temporal stores, prefetch
   hints, integer SSE, the energy model, model-feature ablation flags,
   the analysis module, extra workload builders, OpenMP dynamic/guided
   schedules and C-source kernel loading. *)

open Mt_isa
open Mt_machine
open Mt_creator
open Mt_launcher

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let x5650 = Config.nehalem_x5650_2s

let x7550 = Config.nehalem_x7550_4s

let rsi = Reg.gpr64 Reg.RSI

let rdi = Reg.gpr64 Reg.RDI

let i op ops = Insn.Insn (Insn.make op ops)

let loop body =
  [ Insn.Label "L" ] @ body
  @ [
      i Insn.ADD [ Operand.imm 1; Operand.reg (Reg.gpr32 Reg.RAX) ];
      i Insn.SUB [ Operand.imm 1; Operand.reg rdi ];
      i (Insn.Jcc Insn.GE) [ Operand.label "L" ];
      i Insn.RET [];
    ]

let run_ok ?init ?memory program =
  let memory = match memory with Some m -> m | None -> Memory.create x5650 in
  match Core.run_program ?init x5650 memory program with
  | Ok r -> r
  | Error e -> Alcotest.fail (Core.error_to_string e)

(* ------------------------------------------------------------------ *)
(* New ISA surface                                                     *)
(* ------------------------------------------------------------------ *)

let test_nt_store_semantics () =
  let nt = Insn.make Insn.MOVNTPS [ Operand.reg (Reg.xmm 0); Operand.mem ~base:rsi () ] in
  check_bool "is store" true (Semantics.is_store nt);
  check_bool "is non-temporal" true (Semantics.is_non_temporal nt);
  check_int "16 bytes" 16 (Semantics.data_bytes nt);
  check_int "requires 16 alignment" 16 (Semantics.required_alignment nt);
  check_bool "validates" true (Result.is_ok (Semantics.validate nt));
  (* Wrong direction rejected. *)
  let backwards =
    Insn.make Insn.MOVNTPS [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ]
  in
  check_bool "load form rejected" true (Result.is_error (Semantics.validate backwards))

let test_prefetch_semantics () =
  let p = Insn.make Insn.PREFETCHT0 [ Operand.mem ~base:rsi ~disp:512 () ] in
  check_bool "is prefetch" true (Semantics.is_prefetch p);
  check_bool "uses the load port" true (Semantics.ports p = [ Semantics.Load ]);
  check_int "touches a line" 64 (Semantics.data_bytes p);
  check_bool "validates" true (Result.is_ok (Semantics.validate p));
  check_bool "register operand rejected" true
    (Result.is_error (Semantics.validate (Insn.make Insn.PREFETCHNTA [ Operand.reg rsi ])))

let test_integer_sse_semantics () =
  let p = Insn.make Insn.PADDD [ Operand.reg (Reg.xmm 1); Operand.reg (Reg.xmm 2) ] in
  check_bool "validates" true (Result.is_ok (Semantics.validate p));
  check_bool "alu port" true (Semantics.ports p = [ Semantics.Alu ]);
  check_bool "dest read (rmw)" true
    (List.exists (Reg.equal (Reg.xmm 2)) (Semantics.sources p))

let test_new_mnemonics_roundtrip () =
  List.iter
    (fun op ->
      check_bool (Insn.mnemonic op) true
        (Insn.opcode_of_mnemonic (Insn.mnemonic op) = Some op))
    Insn.[ MOVNTPS; MOVNTDQ; MOVDQA; MOVDQU; PREFETCHT0; PREFETCHT1; PREFETCHNTA;
           PADDD; PSUBD; PAND; POR; PXOR ]

let test_nt_store_bypasses_cache () =
  let m = Memory.create x5650 in
  let addr = 1 lsl 20 in
  let _ = Memory.access ~nt:true m ~now:0. ~addr ~bytes:16 ~write:true in
  check_int "counted" 1 (Memory.counters m).Memory.nt_stores;
  (* The line was not allocated: a later load misses to RAM. *)
  let _ = Memory.access m ~now:100. ~addr ~bytes:8 ~write:false in
  check_bool "line not cached" true (Memory.level_of_last_access m = Memory.Ram)

let test_nt_store_cheaper_than_regular_from_ram () =
  (* Streaming stores avoid the read-for-ownership: a cold store stream
     with movntps beats movaps on cycles per pass. *)
  let build op =
    let spec = Mt_kernels.Streams.store_stream_spec ~streaming:(op = `Nt) ~unroll:(8, 8) () in
    match Creator.generate spec with [ v ] -> v | _ -> Alcotest.fail "variant"
  in
  let value v =
    let opts =
      {
        (Options.default x5650) with
        Options.array_bytes = 1024 * 1024;
        per = Options.Per_pass;
        warmup = false;
        repetitions = 1;
        experiments = 1;
      }
    in
    match Launcher.launch opts (Source.From_variant v) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  let regular = value (build `Regular) in
  let streaming = value (build `Nt) in
  check_bool "movntps at least 1.5x cheaper" true (streaming *. 1.5 < regular)

let test_prefetch_never_faults_or_stalls () =
  (* Prefetching a wildly misaligned address is fine, and a prefetch of
     a cold line does not slow the loop down. *)
  let body =
    [ i Insn.PREFETCHT0 [ Operand.mem ~base:rsi ~disp:3 () ] ]
  in
  let r = run_ok ~init:[ (rdi, 99); (rsi, 1 lsl 21) ] (loop body) in
  check_int "completed all passes" 100 r.Core.rax

let test_prefetch_warms_cache () =
  let m = Memory.create x5650 in
  let addr = 1 lsl 22 in
  let program =
    [ i Insn.PREFETCHT0 [ Operand.mem ~base:rsi () ]; i Insn.RET [] ]
  in
  let _ = run_ok ~memory:m ~init:[ (rsi, addr) ] program in
  let _ = Memory.access m ~now:1000. ~addr ~bytes:8 ~write:false in
  check_bool "line now resident" true (Memory.level_of_last_access m = Memory.L1)

(* ------------------------------------------------------------------ *)
(* Feature flags                                                       *)
(* ------------------------------------------------------------------ *)

let test_tlb_flag () =
  let off = Config.with_features x5650 { Config.all_features with Config.tlb = false } in
  let m = Memory.create off in
  for p = 0 to 999 do
    ignore (Memory.access m ~now:0. ~addr:(p * 4096) ~bytes:4 ~write:false)
  done;
  check_int "no walks with tlb off" 0 (Memory.counters m).Memory.page_walks

let test_prefetcher_flag () =
  let off =
    Config.with_features x5650 { Config.all_features with Config.prefetcher = false }
  in
  let m = Memory.create off in
  for l = 0 to 63 do
    ignore (Memory.access m ~now:(float_of_int (l * 30)) ~addr:(l * 64) ~bytes:8 ~write:false)
  done;
  check_int "no prefetched fills" 0 (Memory.counters m).Memory.prefetched_fills

let test_alias_flag () =
  let off =
    Config.with_features x7550
      { Config.all_features with Config.alias_interference = false }
  in
  let m = Memory.create ~ram_sharers:8 off in
  (* Two colliding streams. *)
  for k = 0 to 63 do
    ignore (Memory.access m ~now:0. ~addr:((1 lsl 20) + (4 * k)) ~bytes:4 ~write:false);
    ignore (Memory.access m ~now:0. ~addr:((1 lsl 21) + (4 * k)) ~bytes:4 ~write:false)
  done;
  check_int "no alias stalls" 0 (Memory.counters m).Memory.alias_stalls

(* ------------------------------------------------------------------ *)
(* Energy                                                              *)
(* ------------------------------------------------------------------ *)

let outcome_for ?(freq = x5650.Config.core_ghz) unroll =
  let cfg = Config.with_core_ghz x5650 freq in
  let body =
    List.init unroll (fun k ->
        i Insn.MOVSS [ Operand.mem ~base:rsi ~disp:(4 * k) (); Operand.reg (Reg.xmm (k mod 8)) ])
  in
  let memory = Memory.create cfg in
  let init = [ (rdi, 499); (rsi, 1 lsl 20) ] in
  match Core.run_program ~init cfg memory (loop body) with
  | Ok r -> (cfg, r)
  | Error e -> Alcotest.fail (Core.error_to_string e)

let test_energy_positive_components () =
  let cfg, o = outcome_for 4 in
  let b = Energy.of_outcome cfg o in
  check_bool "core dynamic > 0" true (b.Energy.core_dynamic_j > 0.);
  check_bool "static > 0" true (b.Energy.static_j > 0.);
  check_bool "total is the sum" true
    (Float.abs (Energy.total b -. (b.Energy.core_dynamic_j +. b.Energy.memory_dynamic_j +. b.Energy.static_j)) < 1e-18)

let test_energy_scales_with_work () =
  let cfg1, o1 = outcome_for 1 in
  let cfg8, o8 = outcome_for 8 in
  (* 8x the loads per pass, same pass count: more energy. *)
  check_bool "more work, more joules" true
    (Energy.joules cfg8 o8 > Energy.joules cfg1 o1)

let test_energy_static_grows_at_low_clock () =
  let cfg_slow, o_slow = outcome_for ~freq:1.335 4 in
  let cfg_fast, o_fast = outcome_for ~freq:2.67 4 in
  let s b = b.Energy.static_j in
  check_bool "slower clock leaks longer" true
    (s (Energy.of_outcome cfg_slow o_slow) > s (Energy.of_outcome cfg_fast o_fast));
  check_bool "dynamic identical" true
    (Float.abs
       ((Energy.of_outcome cfg_slow o_slow).Energy.core_dynamic_j
       -. (Energy.of_outcome cfg_fast o_fast).Energy.core_dynamic_j)
    < 1e-12)

let test_power_sane () =
  let cfg, o = outcome_for 4 in
  let w = Energy.average_power_w cfg o in
  (* A single busy core of this era: somewhere between its static floor
     and a few tens of watts. *)
  check_bool "above static floor" true (w > cfg.Config.energy.Config.core_static_w);
  check_bool "below 100 W" true (w < 100.)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_classify_load_port_bound () =
  let cfg, o = outcome_for 8 in
  check_bool "load-port bound stream" true
    (Microtools.Analysis.classify cfg o = Microtools.Analysis.Load_port)

let test_classify_dependency_chain () =
  let body = [ i Insn.ADDSD [ Operand.reg (Reg.xmm 0); Operand.reg (Reg.xmm 1) ] ] in
  let memory = Memory.create x5650 in
  let r =
    match Core.run_program ~init:[ (rdi, 499) ] x5650 memory (loop body) with
    | Ok r -> r
    | Error e -> Alcotest.fail (Core.error_to_string e)
  in
  check_bool "chain bound" true
    (Microtools.Analysis.classify x5650 r = Microtools.Analysis.Dependency_chain)

let test_utilizations_bounded () =
  let cfg, o = outcome_for 4 in
  List.iter
    (fun (_, u) -> check_bool "utilization sane" true (u >= 0. && u < 2.))
    (Microtools.Analysis.utilizations cfg o)

let test_find_knee () =
  let series = [ (100., 5.); (200., 5.2); (300., 5.1); (500., 5.3); (600., 25.); (700., 31.) ] in
  match Microtools.Analysis.find_knee series with
  | None -> Alcotest.fail "no knee found"
  | Some k ->
    Alcotest.(check (float 1e-9)) "knee at 500" 500. k.Microtools.Analysis.at;
    check_bool "big ratio" true (k.Microtools.Analysis.ratio > 4.)

let test_find_knee_flat () =
  check_bool "flat series has no knee" true
    (Microtools.Analysis.find_knee [ (1., 2.); (2., 2.1); (3., 2.05) ] = None)

let test_recommend_unroll () =
  let points = [ (1, 2.0); (2, 1.2); (3, 1.01); (4, 1.0); (5, 1.0); (8, 0.999) ] in
  check_bool "smallest within tolerance" true
    (Microtools.Analysis.recommend_unroll ~tolerance:0.02 points = Some 3);
  check_bool "empty" true (Microtools.Analysis.recommend_unroll [] = None)

let test_describe_mentions_bottleneck () =
  let cfg, o = outcome_for 8 in
  let text = Microtools.Analysis.describe cfg o in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_bool "names the load port" true (contains "load port")

(* ------------------------------------------------------------------ *)
(* New builders                                                        *)
(* ------------------------------------------------------------------ *)

let test_strided_spec_forks_per_stride () =
  let variants = Creator.generate (Mt_kernels.Streams.strided_spec ()) in
  check_int "five strides" 5 (List.length variants);
  (* Each variant's pointer advances by its chosen stride. *)
  let steps =
    List.map
      (fun v ->
        match (Option.get v.Variant.abi).Abi.pointers with
        | [ (_, step) ] -> step
        | _ -> Alcotest.fail "one pointer expected")
      variants
    |> List.sort compare
  in
  check_bool "steps are the strides" true (steps = [ 4; 16; 64; 256; 1024 ])

let test_strided_larger_stride_slower_in_ram () =
  let variants = Creator.generate (Mt_kernels.Streams.strided_spec ()) in
  let value stride =
    let v =
      List.find
        (fun v ->
          match (Option.get v.Variant.abi).Abi.pointers with
          | [ (_, s) ] -> s = stride
          | _ -> false)
        variants
    in
    let opts =
      {
        (Options.default x5650) with
        Options.array_bytes = 2 * 1024 * 1024;
        per = Options.Per_pass;
        warmup = false;
        repetitions = 1;
        experiments = 1;
      }
    in
    match Launcher.launch opts (Source.From_variant v) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  (* Stride 4 touches a new line every 16 passes; stride 1024 misses
     every pass and defeats the prefetcher. *)
  check_bool "big stride much slower" true (value 1024 > 3. *. value 4)

let test_stencil_spec () =
  let variants = Creator.generate (Mt_kernels.Streams.stencil_spec ()) in
  check_int "four unrolls" 4 (List.length variants);
  let v = List.hd variants in
  let abi = Option.get v.Variant.abi in
  check_int "two arrays" 2 (List.length abi.Abi.pointers);
  check_int "three loads" 3 abi.Abi.loads_per_pass;
  check_int "one store" 1 abi.Abi.stores_per_pass;
  (* And it runs. *)
  let opts = { (Options.default x5650) with Options.array_bytes = 32 * 1024; repetitions = 1; experiments = 2 } in
  check_bool "measures" true
    (Result.is_ok (Launcher.launch opts (Source.From_variant v)))

let test_prefetched_spec_runs () =
  let variants = Creator.generate (Mt_kernels.Streams.prefetched_spec ~unroll:(4, 4) ()) in
  check_int "one variant" 1 (List.length variants);
  let opts =
    { (Options.default x5650) with Options.array_bytes = 64 * 1024; repetitions = 1; experiments = 2 }
  in
  check_bool "measures" true
    (Result.is_ok (Launcher.launch opts (Source.From_variant (List.hd variants))))

(* ------------------------------------------------------------------ *)
(* OpenMP schedules                                                    *)
(* ------------------------------------------------------------------ *)

let test_dynamic_chunks_cover () =
  let rt = { (Mt_openmp.default_runtime ~threads:3) with Mt_openmp.schedule = Mt_openmp.Dynamic 4 } in
  let chunks = Mt_openmp.chunks_of rt ~total:10 in
  let sum = List.fold_left (fun acc c -> acc + c.Mt_openmp.iterations) 0 chunks in
  check_int "covers" 10 sum

let test_guided_chunks_decrease () =
  let rt = { (Mt_openmp.default_runtime ~threads:4) with Mt_openmp.schedule = Mt_openmp.Guided 2 } in
  let chunks = Mt_openmp.chunks_of rt ~total:100 in
  let sizes = List.map (fun c -> c.Mt_openmp.iterations) chunks in
  check_int "first chunk is remaining/threads" 25 (List.hd sizes);
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  check_bool "sizes non-increasing" true (non_increasing sizes);
  check_int "covers" 100 (List.fold_left ( + ) 0 sizes);
  check_bool "floored at minimum" true (List.for_all (fun s -> s >= 2 || s = List.nth sizes (List.length sizes - 1)) sizes)

let test_dynamic_balances_skewed_chunks () =
  (* One chunk is 10x the others: dynamic dispatch keeps the other
     threads busy, so the region beats a static round-robin placement. *)
  let cfg = Config.sandy_bridge_e31240 in
  let cost c ~sharers:_ =
    if c.Mt_openmp.start_iteration = 0 then 100_000. else 10_000.
  in
  let dyn =
    let rt = { (Mt_openmp.default_runtime ~threads:2) with Mt_openmp.schedule = Mt_openmp.Dynamic 1 } in
    Mt_openmp.parallel_for cfg rt ~total:8 ~run_chunk:cost
  in
  let stat =
    let rt = { (Mt_openmp.default_runtime ~threads:2) with Mt_openmp.schedule = Mt_openmp.Static_chunk 1 } in
    Mt_openmp.parallel_for cfg rt ~total:8 ~run_chunk:cost
  in
  check_bool "dynamic no worse" true (dyn <= stat +. 1.)

let test_launcher_openmp_schedules () =
  let variant =
    match Creator.generate (Mt_kernels.Streams.movss_unrolled_spec ~unroll:2 ()) with
    | [ v ] -> v
    | _ -> Alcotest.fail "variant"
  in
  let value schedule =
    let opts =
      {
        (Options.default Config.sandy_bridge_e31240) with
        Options.array_bytes = 128 * 1024;
        openmp_threads = 4;
        openmp_schedule = schedule;
        openmp_chunk = Some 256;
        repetitions = 1;
        experiments = 2;
      }
    in
    match Launcher.launch opts (Source.From_variant variant) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  let s = value Options.Omp_static in
  let d = value Options.Omp_dynamic in
  let g = value Options.Omp_guided in
  check_bool "all positive" true (s > 0. && d > 0. && g > 0.);
  (* Dynamic pays per-chunk dispatch overhead on this uniform loop. *)
  check_bool "dynamic not cheaper than static here" true (d >= s *. 0.99)

(* ------------------------------------------------------------------ *)
(* C-source kernels                                                    *)
(* ------------------------------------------------------------------ *)

let c_variant =
  lazy
    (match
       Creator.generate
         (Mt_kernels.Streams.loadstore_spec ~unroll:(3, 3) ~swap_after:false ())
     with
    | [ v ] -> v
    | _ -> Alcotest.fail "variant")

let test_c_source_parses_back () =
  let v = Lazy.force c_variant in
  match Source.parse_c_source (Emit.c_source v) with
  | Error msg -> Alcotest.fail msg
  | Ok (program, abi) ->
    check_int "unroll from abi" 3 abi.Abi.unroll;
    (* Same payload instructions as the assembly output (minus ret). *)
    let payload p =
      List.filter (fun i -> Semantics.is_memory_move i) (Insn.insns p)
    in
    check_int "same loads" 3 (List.length (payload program));
    check_bool "counter" true (Reg.equal abi.Abi.counter (Reg.gpr64 Reg.RDI))

let test_c_file_measures_like_assembly () =
  let v = Lazy.force c_variant in
  let dir = Filename.get_temp_dir_name () in
  let c_path = Emit.write_c ~dir v in
  let s_path = Emit.write_assembly ~dir v in
  let opts =
    { (Options.default x5650) with Options.array_bytes = 16 * 1024; repetitions = 1; experiments = 2 }
  in
  let value path =
    match Launcher.launch opts (Source.From_file path) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  let vc = value c_path and vs = value s_path in
  Sys.remove c_path;
  Sys.remove s_path;
  Alcotest.(check (float 0.02)) "same measurement" vs vc

(* ------------------------------------------------------------------ *)
(* New experiments                                                     *)
(* ------------------------------------------------------------------ *)

let test_roofline_memory_bound_stream () =
  (* A cold movsd page-stride walk: almost no flops, lots of DRAM. *)
  let body =
    [ i Insn.MOVSD [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ];
      i Insn.ADD [ Operand.imm 64; Operand.reg rsi ] ]
  in
  let r = run_ok ~init:[ (rdi, 999); (rsi, 1 lsl 24) ] (loop body) in
  let roof = Microtools.Analysis.roofline x5650 r in
  check_bool "memory bound" true (roof.Microtools.Analysis.bound = `Memory);
  check_bool "achieved below both roofs" true
    (roof.Microtools.Analysis.achieved_gflops
     <= roof.Microtools.Analysis.compute_roof_gflops +. 1e-9)

let test_roofline_compute_bound_chain () =
  let body =
    [ i Insn.MULSD [ Operand.reg (Reg.xmm 0); Operand.reg (Reg.xmm 1) ];
      i Insn.ADDSD [ Operand.reg (Reg.xmm 2); Operand.reg (Reg.xmm 3) ] ]
  in
  let r = run_ok ~init:[ (rdi, 999) ] (loop body) in
  let roof = Microtools.Analysis.roofline x5650 r in
  check_bool "compute bound (no DRAM traffic)" true
    (roof.Microtools.Analysis.bound = `Compute);
  check_bool "intensity infinite" true (roof.Microtools.Analysis.intensity = infinity);
  check_bool "summary prints" true
    (String.length (Microtools.Analysis.roofline_to_string roof) > 0)

let test_stream_kernels_compile_and_scale () =
  (* All four STREAM kernels compile and their cold-RAM cost orders by
     bytes moved: copy/scale < add/triad. *)
  let cycles kernel =
    let program, abi =
      match Mt_cc.Codegen.compile (Mt_kernels.Streams.stream_kernel_source kernel) with
      | Ok r -> r
      | Error m -> Alcotest.fail m
    in
    let opts =
      {
        (Options.default x5650) with
        Options.array_bytes = 1024 * 1024;
        warmup = false;
        repetitions = 1;
        experiments = 1;
      }
    in
    match Protocol.prepare opts program abi with
    | Error m -> Alcotest.fail m
    | Ok p -> (
      match Protocol.run_once p with
      | Ok o -> o.Core.cycles /. float_of_int o.Core.rax
      | Error m -> Alcotest.fail m)
  in
  let copy = cycles Mt_kernels.Streams.Copy in
  let triad = cycles Mt_kernels.Streams.Triad in
  check_bool "triad moves more, costs more" true (triad > copy *. 1.2);
  check_int "copy bytes" 16 (Mt_kernels.Streams.stream_kernel_bytes_per_pass Mt_kernels.Streams.Copy);
  check_int "triad bytes" 24 (Mt_kernels.Streams.stream_kernel_bytes_per_pass Mt_kernels.Streams.Triad)

let test_ablation_experiment () =
  let t = Microtools.Experiments.ablation ~quick:true () in
  check_int "four mechanisms" 4 (List.length t.Microtools.Exp_table.rows);
  (* The prefetcher row: off must be slower than on. *)
  let row = List.find (fun r -> List.hd r = "stream prefetcher") t.Microtools.Exp_table.rows in
  let v_on = float_of_string (List.nth row 2) in
  let v_off = float_of_string (List.nth row 3) in
  check_bool "prefetcher helps" true (v_off > v_on)

let test_energy_experiment () =
  let t = Microtools.Experiments.energy ~quick:true () in
  check_int "rows" 4 (List.length t.Microtools.Exp_table.rows);
  List.iter
    (fun row ->
      check_bool "positive energy" true (float_of_string (List.nth row 3) > 0.))
    t.Microtools.Exp_table.rows

let tests =
  [
    Alcotest.test_case "nt store semantics" `Quick test_nt_store_semantics;
    Alcotest.test_case "prefetch semantics" `Quick test_prefetch_semantics;
    Alcotest.test_case "integer sse semantics" `Quick test_integer_sse_semantics;
    Alcotest.test_case "new mnemonics round-trip" `Quick test_new_mnemonics_roundtrip;
    Alcotest.test_case "nt store bypasses cache" `Quick test_nt_store_bypasses_cache;
    Alcotest.test_case "nt store cheaper from RAM" `Quick test_nt_store_cheaper_than_regular_from_ram;
    Alcotest.test_case "prefetch never faults or stalls" `Quick test_prefetch_never_faults_or_stalls;
    Alcotest.test_case "prefetch warms cache" `Quick test_prefetch_warms_cache;
    Alcotest.test_case "tlb feature flag" `Quick test_tlb_flag;
    Alcotest.test_case "prefetcher feature flag" `Quick test_prefetcher_flag;
    Alcotest.test_case "alias feature flag" `Quick test_alias_flag;
    Alcotest.test_case "energy positive components" `Quick test_energy_positive_components;
    Alcotest.test_case "energy scales with work" `Quick test_energy_scales_with_work;
    Alcotest.test_case "static energy grows at low clock" `Quick test_energy_static_grows_at_low_clock;
    Alcotest.test_case "power sane" `Quick test_power_sane;
    Alcotest.test_case "classify load-port bound" `Quick test_classify_load_port_bound;
    Alcotest.test_case "classify dependency chain" `Quick test_classify_dependency_chain;
    Alcotest.test_case "utilizations bounded" `Quick test_utilizations_bounded;
    Alcotest.test_case "find knee" `Quick test_find_knee;
    Alcotest.test_case "find knee: flat" `Quick test_find_knee_flat;
    Alcotest.test_case "recommend unroll" `Quick test_recommend_unroll;
    Alcotest.test_case "describe mentions bottleneck" `Quick test_describe_mentions_bottleneck;
    Alcotest.test_case "strided spec forks per stride" `Quick test_strided_spec_forks_per_stride;
    Alcotest.test_case "larger stride slower in RAM" `Quick test_strided_larger_stride_slower_in_ram;
    Alcotest.test_case "stencil spec" `Quick test_stencil_spec;
    Alcotest.test_case "prefetched spec runs" `Quick test_prefetched_spec_runs;
    Alcotest.test_case "dynamic chunks cover" `Quick test_dynamic_chunks_cover;
    Alcotest.test_case "guided chunks decrease" `Quick test_guided_chunks_decrease;
    Alcotest.test_case "dynamic balances skewed chunks" `Quick test_dynamic_balances_skewed_chunks;
    Alcotest.test_case "launcher openmp schedules" `Quick test_launcher_openmp_schedules;
    Alcotest.test_case "c source parses back" `Quick test_c_source_parses_back;
    Alcotest.test_case "c file measures like assembly" `Quick test_c_file_measures_like_assembly;
    Alcotest.test_case "roofline: memory-bound stream" `Quick test_roofline_memory_bound_stream;
    Alcotest.test_case "roofline: compute-bound chain" `Quick test_roofline_compute_bound_chain;
    Alcotest.test_case "STREAM kernels compile and scale" `Quick test_stream_kernels_compile_and_scale;
    Alcotest.test_case "ablation experiment (quick)" `Slow test_ablation_experiment;
    Alcotest.test_case "energy experiment (quick)" `Slow test_energy_experiment;
  ]
