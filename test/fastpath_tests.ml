(* Equivalence and allocation-discipline tests for the block-replay
   fast path: [Core.run] must be observationally identical to the
   reference interpreter [Core.run_reference] — same cycles, same
   counters, bit for bit — and the non-memory steady state must not
   allocate. *)

open Mt_machine
open Mt_isa
open Mt_creator

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let cfg = Config.nehalem_x5650_2s

let rsi = Reg.gpr64 Reg.RSI

let rdi = Reg.gpr64 Reg.RDI

let eax = Reg.gpr32 Reg.RAX

let i op ops = Insn.Insn (Insn.make op ops)

let loop ?(step = 1) body =
  [ Insn.Label "L" ] @ body
  @ [
      i Insn.ADD [ Operand.imm 1; Operand.reg eax ];
      i Insn.SUB [ Operand.imm step; Operand.reg rdi ];
      i (Insn.Jcc Insn.GE) [ Operand.label "L" ];
      i Insn.RET [];
    ]

(* ------------------------------------------------------------------ *)
(* Outcome equality                                                    *)
(* ------------------------------------------------------------------ *)

let show_outcome (o : Core.outcome) =
  Printf.sprintf
    "cycles=%.17g insns=%d rax=%d br=%d misp=%d ld=%d st=%d pf=%d fp=%d \
     alu=%d mem=(acc=%d l1=%d l2=%d l3=%d ram=%d split=%d alias=%d pref=%d \
     tlb=%d walk=%d nt=%d)"
    o.Core.cycles o.Core.instructions o.Core.rax o.Core.branches
    o.Core.mispredicts o.Core.loads o.Core.stores o.Core.prefetches
    o.Core.fp_ops o.Core.alu_ops o.Core.mem.Memory.accesses
    o.Core.mem.Memory.l1_hits o.Core.mem.Memory.l2_hits
    o.Core.mem.Memory.l3_hits o.Core.mem.Memory.ram_accesses
    o.Core.mem.Memory.split_accesses o.Core.mem.Memory.alias_stalls
    o.Core.mem.Memory.prefetched_fills o.Core.mem.Memory.tlb_misses
    o.Core.mem.Memory.page_walks o.Core.mem.Memory.nt_stores

let show_result = function
  | Ok o -> "Ok " ^ show_outcome o
  | Error e -> "Error " ^ Core.error_to_string e

(* Run the same compiled program through both engines on identically
   fresh state and demand bit-identical results. *)
let check_equivalent ?(what = "engines agree") ?init ?max_instructions
    ?(machine = cfg) ?ram_sharers program =
  match Core.compile program with
  | Error e -> Alcotest.failf "%s: compile: %s" what (Core.error_to_string e)
  | Ok compiled ->
    let mem_fast = Memory.create ?ram_sharers machine in
    let mem_ref = Memory.create ?ram_sharers machine in
    let fast = Core.run ?init ?max_instructions machine mem_fast compiled in
    let reference =
      Core.run_reference ?init ?max_instructions machine mem_ref compiled
    in
    if fast <> reference then
      Alcotest.failf "%s:\n  fast: %s\n  ref:  %s" what (show_result fast)
        (show_result reference)

(* ------------------------------------------------------------------ *)
(* Directed equivalence cases                                          *)
(* ------------------------------------------------------------------ *)

let test_equiv_alu_loop () =
  let rbx = Reg.gpr64 Reg.RBX in
  let rcx = Reg.gpr64 Reg.RCX in
  check_equivalent ~what:"alu loop" ~init:[ (rdi, 199) ]
    (loop
       [
         i Insn.ADD [ Operand.imm 3; Operand.reg rbx ];
         i Insn.IMUL [ Operand.reg rbx; Operand.reg rcx ];
         i Insn.XOR [ Operand.reg rcx; Operand.reg rbx ];
       ])

let test_equiv_load_store_loop () =
  let xmm0 = Reg.xmm 0 in
  check_equivalent ~what:"load/store stream"
    ~init:[ (rdi, 499); (rsi, 1 lsl 22) ]
    (loop
       [
         i Insn.MOVSS [ Operand.mem ~base:rsi (); Operand.reg xmm0 ];
         i Insn.MOVSS [ Operand.reg xmm0; Operand.mem ~base:rsi ~disp:4096 () ];
         i Insn.ADD [ Operand.imm 4; Operand.reg rsi ];
       ])

let test_equiv_split_accesses () =
  let xmm0 = Reg.xmm 0 in
  (* 8-byte loads at line-60: every access straddles a cache line. *)
  check_equivalent ~what:"line splits" ~init:[ (rdi, 99); (rsi, (1 lsl 22) + 60) ]
    (loop
       [
         i Insn.MOVSD [ Operand.mem ~base:rsi (); Operand.reg xmm0 ];
         i Insn.ADD [ Operand.imm 64; Operand.reg rsi ];
       ])

let test_equiv_prefetch_and_nt () =
  let xmm0 = Reg.xmm 0 in
  check_equivalent ~what:"prefetch + nt store"
    ~init:[ (rdi, 299); (rsi, 1 lsl 23) ]
    (loop
       [
         i Insn.PREFETCHT0 [ Operand.mem ~base:rsi ~disp:256 () ];
         i Insn.MOVSS [ Operand.mem ~base:rsi (); Operand.reg xmm0 ];
         i Insn.MOVNTPS [ Operand.reg xmm0; Operand.mem ~base:rsi ~disp:(1 lsl 22) () ];
         i Insn.ADD [ Operand.imm 16; Operand.reg rsi ];
       ])

let test_equiv_alias_sharers () =
  let xmm0 = Reg.xmm 0 in
  (* With ram_sharers > 1 the alias-interference path (the slow branch
     the memo must not shortcut) is live. *)
  check_equivalent ~what:"alias interference" ~ram_sharers:8
    ~init:[ (rdi, 199); (rsi, 1 lsl 22) ]
    (loop
       [
         i Insn.MOVSS [ Operand.mem ~base:rsi (); Operand.reg xmm0 ];
         i Insn.MOVSS [ Operand.mem ~base:rsi ~disp:(1 lsl 20) (); Operand.reg (Reg.xmm 1) ];
         i Insn.ADD [ Operand.imm 4; Operand.reg rsi ];
       ])

let test_equiv_fuel_and_faults () =
  (* Fuel exhaustion must trip at the same instruction. *)
  let forever = [ Insn.Label "L"; i Insn.JMP [ Operand.label "L" ] ] in
  check_equivalent ~what:"fuel" ~max_instructions:777 forever;
  (* Alignment faults must agree on pc/addr. *)
  let misaligned =
    [
      i Insn.MOVAPS [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ];
      i Insn.RET [];
    ]
  in
  check_equivalent ~what:"alignment fault" ~init:[ (rsi, 4100) ] misaligned

let test_equiv_empty_and_straightline () =
  check_equivalent ~what:"empty" [];
  check_equivalent ~what:"ret only" [ i Insn.RET [] ];
  check_equivalent ~what:"fall off the end"
    [ i Insn.ADD [ Operand.imm 1; Operand.reg eax ] ];
  check_equivalent ~what:"jump off the end"
    [ i Insn.JMP [ Operand.label "end" ]; Insn.Label "end" ]

(* ------------------------------------------------------------------ *)
(* Golden corpus: every description x every preset                     *)
(* ------------------------------------------------------------------ *)

(* dune runtest runs us in test/; dune exec runs from the root. *)
let corpus_dir =
  if Sys.file_exists "../descriptions" then "../descriptions" else "descriptions"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Sample [n] variants evenly across the space (first and last always
   included): full spaces run to hundreds of variants per kernel, and
   the engine behaviour varies with unroll/opcode/stride, not with the
   variant index. *)
let sample n xs =
  let len = List.length xs in
  if len <= n then xs
  else
    List.filteri
      (fun idx _ -> idx = len - 1 || idx mod (len / n) = 0)
      xs

let golden_init abi passes =
  let bases = List.init 8 (fun idx -> (idx + 1) * (1 lsl 21)) in
  (abi.Abi.counter, Abi.trip_count_for_passes abi passes)
  :: List.mapi
       (fun idx (r, _step) -> (r, List.nth bases (idx mod 8)))
       abi.Abi.pointers

let test_golden_corpus () =
  let kernels = Sys.readdir corpus_dir in
  Array.sort compare kernels;
  let kernels =
    Array.to_list kernels |> List.filter (fun f -> Filename.check_suffix f ".xml")
  in
  check_bool "full corpus present" true (List.length kernels >= 11);
  let checked = ref 0 in
  List.iter
    (fun file ->
      let text = read_file (Filename.concat corpus_dir file) in
      let spec =
        match Description.of_string text with
        | Ok spec -> spec
        | Error msg -> Alcotest.failf "%s: %s" file msg
      in
      let variants = sample 4 (Creator.generate spec) in
      List.iter
        (fun (name, machine) ->
          List.iter
            (fun v ->
              let abi =
                match v.Variant.abi with
                | Some abi -> abi
                | None -> Alcotest.failf "%s: variant without abi" file
              in
              let program = Variant.concrete_body v in
              check_equivalent
                ~what:(Printf.sprintf "%s/%s/%s" file name (Variant.id v))
                ~machine
                ~init:(golden_init abi 24)
                program;
              incr checked)
            variants)
        Config.presets)
    kernels;
  (* 11 kernels x 3 presets x sampled variants. *)
  check_bool "covered the corpus" true (!checked >= 11 * 3 * 3)

(* ------------------------------------------------------------------ *)
(* QCheck: random short programs                                       *)
(* ------------------------------------------------------------------ *)

let prop_random_programs =
  let open QCheck in
  let gpr = Gen.oneofl [ Reg.RBX; Reg.RCX; Reg.RDX; Reg.R8; Reg.R9 ] in
  let body_insn =
    Gen.(
      oneof
        [
          (* ALU reg/imm *)
          ( oneofl [ Insn.ADD; Insn.SUB; Insn.AND; Insn.OR; Insn.XOR; Insn.IMUL ]
          >>= fun op ->
            gpr >>= fun d ->
            oneof
              [
                (0 -- 64 >|= fun n -> Insn.make op [ Operand.imm n; Operand.reg (Reg.gpr64 d) ]);
                ( gpr >|= fun s ->
                  Insn.make op [ Operand.reg (Reg.gpr64 s); Operand.reg (Reg.gpr64 d) ] );
              ] );
          (* MOV / LEA *)
          ( gpr >>= fun d ->
            oneof
              [
                (0 -- 1000 >|= fun n -> Insn.make Insn.MOV [ Operand.imm n; Operand.reg (Reg.gpr64 d) ]);
                ( 0 -- 512 >|= fun disp ->
                  Insn.make Insn.LEA
                    [ Operand.mem ~base:rsi ~disp (); Operand.reg (Reg.gpr64 d) ] );
              ] );
          (* SSE arithmetic *)
          ( oneofl [ Insn.ADDSD; Insn.MULSS; Insn.ADDPS; Insn.MULPD; Insn.DIVSD ]
          >>= fun op ->
            0 -- 3 >>= fun a ->
            0 -- 3 >|= fun b ->
            Insn.make op [ Operand.reg (Reg.xmm a); Operand.reg (Reg.xmm b) ] );
          (* Loads and stores off the array base (unaligned-tolerant). *)
          ( oneofl [ 0; 4; 8; 60; 64; 4096 ] >>= fun disp ->
            0 -- 3 >>= fun x ->
            oneofl
              [
                Insn.make Insn.MOVSD
                  [ Operand.mem ~base:rsi ~disp (); Operand.reg (Reg.xmm x) ];
                Insn.make Insn.MOVUPS
                  [ Operand.mem ~base:rsi ~disp (); Operand.reg (Reg.xmm x) ];
                Insn.make Insn.MOVSS
                  [ Operand.reg (Reg.xmm x); Operand.mem ~base:rsi ~disp () ];
              ]
            >|= fun insn -> insn );
          (* Walk the base pointer. *)
          ( oneofl [ 4; 8; 16; 64; 4160 ] >|= fun step ->
            Insn.make Insn.ADD [ Operand.imm step; Operand.reg rsi ] );
        ])
  in
  let gen =
    Gen.(
      list_size (1 -- 8) body_insn >>= fun body ->
      1 -- 40 >|= fun trips -> (body, trips))
  in
  Test.make ~count:80 ~name:"fastpath: random programs match the reference"
    (make gen) (fun (body, trips) ->
      check_equivalent ~what:"random program"
        ~init:[ (rdi, trips); (rsi, 1 lsl 22) ]
        (loop (List.map (fun x -> Insn.Insn x) body));
      true)

(* ------------------------------------------------------------------ *)
(* Allocation discipline                                               *)
(* ------------------------------------------------------------------ *)

let test_zero_alloc_off_path () =
  let rbx = Reg.gpr64 Reg.RBX in
  let rcx = Reg.gpr64 Reg.RCX in
  let program =
    loop
      [
        i Insn.ADD [ Operand.imm 3; Operand.reg rbx ];
        i Insn.XOR [ Operand.reg rbx; Operand.reg rcx ];
        i Insn.IMUL [ Operand.imm 5; Operand.reg rcx ];
        i Insn.SUB [ Operand.reg rcx; Operand.reg rbx ];
      ]
  in
  let compiled =
    match Core.compile program with
    | Ok c -> c
    | Error e -> Alcotest.fail (Core.error_to_string e)
  in
  let memory = Memory.create cfg in
  let words_for trips =
    (* Warm everything (block build, caches) with the same trip count
       first, so the measured run sees only steady-state work. *)
    ignore (Core.run ~init:[ (rdi, trips) ] cfg memory compiled);
    let before = Gc.minor_words () in
    ignore (Core.run ~init:[ (rdi, trips) ] cfg memory compiled);
    Gc.minor_words () -. before
  in
  let small = words_for 100 in
  let large = words_for 5_000 in
  (* Both runs pay the same per-run setup; the extra ~34k instructions
     of the large run must cost zero additional minor words. *)
  let per_insn = (large -. small) /. float_of_int (7 * (5_000 - 100)) in
  if per_insn > 0.01 then
    Alcotest.failf
      "fast path allocates %.4f minor words per instruction (small run %.0f, \
       large run %.0f)"
      per_insn small large

(* ------------------------------------------------------------------ *)
(* Satellite bug regressions                                           *)
(* ------------------------------------------------------------------ *)

let test_prefetch_not_counted_as_load () =
  let xmm0 = Reg.xmm 0 in
  let program =
    loop
      [
        i Insn.MOVSS [ Operand.mem ~base:rsi (); Operand.reg xmm0 ];
        i Insn.PREFETCHT0 [ Operand.mem ~base:rsi ~disp:256 () ];
        i Insn.ADD [ Operand.imm 4; Operand.reg rsi ];
      ]
  in
  let memory = Memory.create cfg in
  match Core.run_program ~init:[ (rdi, 49); (rsi, 1 lsl 22) ] cfg memory program with
  | Error e -> Alcotest.fail (Core.error_to_string e)
  | Ok r ->
    check_int "demand loads only" 50 r.Core.loads;
    check_int "prefetches counted apart" 50 r.Core.prefetches;
    check_int "no stores" 0 r.Core.stores;
    (* Both the demand load and the hint reach the memory pipeline. *)
    check_int "memory accesses" 100 r.Core.mem.Memory.accesses

let split_access m =
  ignore (Memory.access m ~now:0. ~addr:((1 lsl 22) + 60) ~bytes:8 ~write:false)

let test_reset_clears_split_flag () =
  let m = Memory.create cfg in
  split_access m;
  check_bool "split observed" true (Memory.last_access_was_split m);
  Memory.reset m;
  check_bool "reset clears the split flag" false (Memory.last_access_was_split m)

let test_drain_clears_split_flag () =
  let m = Memory.create cfg in
  split_access m;
  check_bool "split observed" true (Memory.last_access_was_split m);
  Memory.drain m;
  check_bool "drain clears the split flag" false (Memory.last_access_was_split m)

(* ------------------------------------------------------------------ *)
(* access_batch                                                        *)
(* ------------------------------------------------------------------ *)

let check_batch_equiv ~what ~addr ~stride ~count ~bytes ~write =
  let ma = Memory.create cfg in
  let mb = Memory.create cfg in
  let batched =
    Memory.access_batch ma ~now:0. ~addr ~stride ~count ~bytes ~write
  in
  let folded = ref 0. in
  for k = 0 to count - 1 do
    folded := Memory.access mb ~now:0. ~addr:(addr + (k * stride)) ~bytes ~write
  done;
  Alcotest.(check (float 0.)) (what ^ ": ready time") !folded batched;
  check_bool
    (what ^ ": counters")
    true
    (Memory.counters ma = Memory.counters mb)

let test_access_batch_matches_fold () =
  check_batch_equiv ~what:"dense read" ~addr:(1 lsl 22) ~stride:8 ~count:512
    ~bytes:8 ~write:false;
  check_batch_equiv ~what:"page-crossing write" ~addr:((1 lsl 22) + 32)
    ~stride:128 ~count:200 ~bytes:16 ~write:true;
  check_batch_equiv ~what:"line splits" ~addr:((1 lsl 22) + 60) ~stride:64
    ~count:64 ~bytes:8 ~write:false

let tests =
  [
    Alcotest.test_case "equiv: alu loop" `Quick test_equiv_alu_loop;
    Alcotest.test_case "equiv: load/store loop" `Quick test_equiv_load_store_loop;
    Alcotest.test_case "equiv: line splits" `Quick test_equiv_split_accesses;
    Alcotest.test_case "equiv: prefetch and nt" `Quick test_equiv_prefetch_and_nt;
    Alcotest.test_case "equiv: alias sharers" `Quick test_equiv_alias_sharers;
    Alcotest.test_case "equiv: fuel and faults" `Quick test_equiv_fuel_and_faults;
    Alcotest.test_case "equiv: degenerate programs" `Quick
      test_equiv_empty_and_straightline;
    Alcotest.test_case "golden corpus x presets" `Quick test_golden_corpus;
    QCheck_alcotest.to_alcotest prop_random_programs;
    Alcotest.test_case "zero minor words per instruction" `Quick
      test_zero_alloc_off_path;
    Alcotest.test_case "prefetches are not demand loads" `Quick
      test_prefetch_not_counted_as_load;
    Alcotest.test_case "reset clears split flag" `Quick
      test_reset_clears_split_flag;
    Alcotest.test_case "drain clears split flag" `Quick
      test_drain_clears_split_flag;
    Alcotest.test_case "access_batch matches folded access" `Quick
      test_access_batch_matches_fold;
  ]
