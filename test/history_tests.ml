(* Tests for the longitudinal layer: the Trend classifier on synthetic
   step/drift/stationary series (plus a QCheck property that the noise
   model's stationary jitter never trips a changepoint), the history
   archive's append/load round-trip and torn-manifest recovery, the
   windowed baseline, and the sparkline renderer the timeline view
   uses. *)

module Trend = Mt_stats.Trend
module History = Mt_obsv.History
module Snapshot = Mt_obsv.Snapshot

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let check_class msg expected (r : Trend.result) =
  check_string msg
    (Trend.classification_to_string expected)
    (Trend.classification_to_string r.Trend.classification)

(* ------------------------------------------------------------------ *)
(* Trend classification on synthetic series                            *)
(* ------------------------------------------------------------------ *)

let test_trend_step_regression () =
  (* Five runs at 2.0, three at 3.0: an unambiguous step up (slower). *)
  let xs = [| 2.0; 2.0; 2.0; 2.0; 2.0; 3.0; 3.0; 3.0 |] in
  let r = Trend.analyze xs in
  check_class "step up classifies as regression" Trend.Step_regression r;
  check_int "changepoint is the first slow run" 5
    (Option.value r.Trend.changepoint ~default:(-1));
  check_bool "shift is the +50% move" true (abs_float (r.Trend.shift -. 0.5) < 0.05)

let test_trend_step_improvement () =
  let xs = [| 3.0; 3.0; 3.0; 3.0; 2.4; 2.4; 2.4; 2.4 |] in
  let r = Trend.analyze xs in
  check_class "step down classifies as improvement" Trend.Step_improvement r;
  check_int "changepoint is the first fast run" 4
    (Option.value r.Trend.changepoint ~default:(-1));
  check_bool "shift is negative" true (r.Trend.shift < 0.)

let test_trend_stationary () =
  (* Wobble well inside a generous explicit noise estimate. *)
  let xs = [| 1.000; 1.004; 0.997; 1.002; 0.999; 1.003; 0.998; 1.001 |] in
  let r = Trend.analyze ~noise:0.01 xs in
  check_class "small wobble is stationary" Trend.Stationary r;
  check_bool "no changepoint reported" true (r.Trend.changepoint = None)

let test_trend_drift () =
  (* A shallow monotone ramp: total move beyond the band, but every
     split's median shift inside it — drift, not a step.  The explicit
     noise pins the band at 3 * 0.005 = 1.5%; the ramp climbs 2.4%
     end to end while the best split shifts only ~1.2%. *)
  let n = 9 in
  let xs =
    Array.init n (fun i -> 1.0 +. (0.024 *. float_of_int i /. float_of_int (n - 1)))
  in
  let r = Trend.analyze ~noise:0.005 xs in
  check_class "shallow ramp classifies as drift" Trend.Drifting r;
  check_bool "drift is positive (slower)" true (r.Trend.drift > 0.);
  check_bool "no changepoint for drift" true (r.Trend.changepoint = None)

let test_trend_short_series_stationary () =
  let r = Trend.analyze [| 1.0; 5.0; 1.0 |] in
  check_class "too short to split" Trend.Stationary r

(* The noise model's stationary environments must not trip the
   classifier: a constant workload measured through Noise.perturb is
   run-to-run jitter, never a step.  This is the no-false-changepoint
   guarantee the CI gate's stability rests on. *)
let stationary_noise_no_changepoint =
  QCheck.Test.make ~count:100
    ~name:"stationary noise yields no step changepoints"
    QCheck.(pair (int_bound 10_000) (int_range 6 40))
    (fun (seed, n) ->
      let noise = Mt_machine.Noise.create ~seed Mt_machine.Noise.stable_env in
      let xs =
        Array.init n (fun _ -> Mt_machine.Noise.perturb noise 1_000_000.)
      in
      let r = Trend.analyze xs in
      match r.Trend.classification with
      | Trend.Step_regression | Trend.Step_improvement -> false
      | Trend.Stationary | Trend.Drifting -> true)

(* ------------------------------------------------------------------ *)
(* History archive                                                     *)
(* ------------------------------------------------------------------ *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let snap ?(kernel = ("copy", "kh-1")) ?(machine = ("laptop", "mh-1"))
    ?(key = "v0") median =
  let values = Array.init 5 (fun i -> median +. (0.001 *. float_of_int i)) in
  Snapshot.make ~tool:"test" ~created_at:0. ~kernel ~machine ~seed:7
    [ Snapshot.of_values ~key ~seed:7 values ]

let append_ok ?label dir s =
  match History.append ?label ~dir s with
  | Ok entry -> entry
  | Error msg -> Alcotest.failf "append failed: %s" msg

let load_ok dir =
  match History.load dir with
  | Ok hist -> hist
  | Error msg -> Alcotest.failf "load failed: %s" msg

let test_history_round_trip () =
  let dir = temp_dir "mthist" in
  let e1 = append_ok ~label:"first" dir (snap 2.0) in
  let e2 = append_ok dir (snap 2.1) in
  check_int "sequence numbers are 1 and 2" 1 e1.History.seq;
  check_int "second append gets seq 2" 2 e2.History.seq;
  check_string "explicit label kept" "first" e1.History.label;
  check_string "default label derives from seq" "run-000002" e2.History.label;
  let hist = load_ok dir in
  check_int "two entries load back" 2 (History.length hist);
  check_string "archive dir recorded" dir (History.dir hist);
  (match History.latest hist with
  | Some e -> check_int "latest is the newest seq" 2 e.History.seq
  | None -> Alcotest.fail "latest on a non-empty archive");
  List.iter
    (fun e ->
      match History.snapshot hist e with
      | Error msg -> Alcotest.failf "snapshot %d unreadable: %s" e.History.seq msg
      | Ok s ->
        check_string "tool round-trips" "test" s.Snapshot.tool;
        check_string "kernel hash round-trips" "kh-1" s.Snapshot.kernel_hash)
    (History.entries hist);
  let series = History.series hist ~variant:"v0" in
  check_int "series has one point per run" 2 (List.length series);
  let medians = List.map (fun (_, v) -> v.Snapshot.median) series in
  check_bool "series is oldest first" true
    (match medians with [ a; b ] -> a < b | _ -> false)

let test_history_matching_lineage () =
  let dir = temp_dir "mthist" in
  ignore (append_ok dir (snap 2.0));
  ignore (append_ok dir (snap ~machine:("server", "mh-2") 5.0));
  ignore (append_ok dir (snap 2.1));
  let hist = load_ok dir in
  let lineage = History.matching ~kernel_hash:"kh-1" ~machine_hash:"mh-1" hist in
  check_int "foreign machine excluded from lineage" 2 (List.length lineage);
  List.iter
    (fun e -> check_string "lineage machine hash" "mh-1" e.History.machine_hash)
    lineage;
  check_int "unfiltered keeps everything" 3
    (List.length (History.matching hist))

let test_history_lineages () =
  let dir = temp_dir "mthist" in
  ignore (append_ok dir (snap 2.0));
  ignore (append_ok dir (snap ~machine:("server", "mh-2") 5.0));
  ignore (append_ok dir (snap 2.1));
  ignore (append_ok dir (snap ~kernel:("triad", "kh-2") 7.0));
  let hist = load_ok dir in
  let lineages = History.lineages hist in
  check_int "three distinct (kernel, machine) lineages" 3
    (List.length lineages);
  (match lineages with
  | first :: _ ->
    (* First-appearance order: the laptop copy lineage leads. *)
    check_string "first lineage kernel" "copy" first.History.l_kernel_name;
    check_string "first lineage machine hash" "mh-1" first.History.l_machine_hash;
    check_int "lineage collects both its runs" 2
      (List.length first.History.l_entries);
    check_bool "lineage entries are oldest first" true
      (match first.History.l_entries with
      | [ a; b ] -> a.History.seq < b.History.seq
      | _ -> false)
  | [] -> Alcotest.fail "lineages on a non-empty archive");
  match History.latest_lineage hist with
  | None -> Alcotest.fail "latest_lineage on a non-empty archive"
  | Some l ->
    check_string "latest lineage follows the newest run" "kh-2"
      l.History.l_kernel_hash;
    check_int "latest lineage has its one run" 1 (List.length l.History.l_entries)

let test_history_torn_manifest_recovery () =
  let dir = temp_dir "mthist" in
  ignore (append_ok dir (snap 2.0));
  ignore (append_ok dir (snap 2.1));
  (* Simulate a crash mid-append: a final manifest line with no
     newline and truncated JSON. *)
  let manifest = Filename.concat dir History.manifest_name in
  let oc = open_out_gen [ Open_append ] 0o644 manifest in
  output_string oc "{\"seq\": 3, \"lab";
  close_out oc;
  let hist = load_ok dir in
  check_int "torn line skipped on load" 2 (History.length hist);
  (* The next append repairs the torn tail and takes the next seq. *)
  let e = append_ok dir (snap 2.2) in
  check_int "append after tear continues the sequence" 3 e.History.seq;
  let hist = load_ok dir in
  check_int "repaired manifest loads all real runs" 3 (History.length hist);
  List.iteri
    (fun i e -> check_int "seqs stay dense" (i + 1) e.History.seq)
    (History.entries hist)

let test_history_trend_on_archive () =
  let dir = temp_dir "mthist" in
  for _ = 1 to 5 do
    ignore (append_ok dir (snap 2.0))
  done;
  for _ = 1 to 3 do
    ignore (append_ok dir (snap 3.0))
  done;
  let hist = load_ok dir in
  let series = History.series hist ~variant:"v0" in
  let r = History.trend series in
  check_class "archived step detected" Trend.Step_regression r;
  check_int "changepoint at the sixth run" 5
    (Option.value r.Trend.changepoint ~default:(-1))

let test_history_baseline_windowing () =
  let dir = temp_dir "mthist" in
  (* An already-landed step: the baseline must come from the new
     regime only, not the stale fast runs before it. *)
  for _ = 1 to 5 do
    ignore (append_ok dir (snap 2.0))
  done;
  for _ = 1 to 3 do
    ignore (append_ok dir (snap 3.0))
  done;
  let hist = load_ok dir in
  match History.baseline hist (History.entries hist) with
  | Error msg -> Alcotest.failf "baseline failed: %s" msg
  | Ok base ->
    check_string "baseline is marked synthetic" "mt_history-baseline"
      base.Snapshot.tool;
    (match base.Snapshot.variants with
    | [ v ] ->
      check_bool "baseline median from the post-step regime" true
        (v.Snapshot.median >= 2.9);
      check_int "counts summed over the window" 15 v.Snapshot.count
    | vs -> Alcotest.failf "one baseline variant expected, got %d"
              (List.length vs))

let test_history_baseline_empty_entries () =
  let dir = temp_dir "mthist" in
  ignore (append_ok dir (snap 2.0));
  let hist = load_ok dir in
  match History.baseline hist [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "baseline over no entries must error"

let test_history_load_missing_dir () =
  match History.load "/nonexistent/mt-history-dir" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing directory must error"

(* ------------------------------------------------------------------ *)
(* Sparkline                                                           *)
(* ------------------------------------------------------------------ *)

let test_sparkline () =
  check_string "extremes map to lowest and highest glyphs"
    "\xe2\x96\x81\xe2\x96\x88"
    (Microtools.Ascii_plot.sparkline [| 1.0; 8.0 |]);
  check_string "flat series renders all-low"
    "\xe2\x96\x81\xe2\x96\x81\xe2\x96\x81"
    (Microtools.Ascii_plot.sparkline [| 5.0; 5.0; 5.0 |]);
  check_string "empty series renders empty" "" (Microtools.Ascii_plot.sparkline [||]);
  let s = Microtools.Ascii_plot.sparkline [| 2.0; 2.0; 2.0; 3.0; 3.0 |] in
  check_int "one glyph (3 bytes) per point" 15 (String.length s)

let test_sparkline_edge_cases () =
  let spark = Microtools.Ascii_plot.sparkline in
  check_string "single sample renders one low glyph" "\xe2\x96\x81"
    (spark [| 42.0 |]);
  (* A stray NaN (a corrupt history cell) must not blank the line: the
     finite neighbours keep their scale and the NaN gets a placeholder. *)
  check_string "nan renders as a placeholder between real glyphs"
    "\xe2\x96\x81?\xe2\x96\x88"
    (spark [| 1.0; Float.nan; 8.0 |]);
  check_string "all-nan series renders all placeholders" "???"
    (spark [| Float.nan; Float.nan; Float.nan |]);
  check_string "infinities clamp to the extreme glyphs"
    "\xe2\x96\x88\xe2\x96\x81\xe2\x96\x81\xe2\x96\x88"
    (spark [| Float.infinity; Float.neg_infinity; 3.0; 9.0 |]);
  (* With no finite samples at all the scale is empty but every sample
     still renders something defined. *)
  check_string "inf-only series still renders"
    "\xe2\x96\x88\xe2\x96\x81"
    (spark [| Float.infinity; Float.neg_infinity |])

let tests =
  [
    Alcotest.test_case "trend: step regression" `Quick test_trend_step_regression;
    Alcotest.test_case "trend: step improvement" `Quick
      test_trend_step_improvement;
    Alcotest.test_case "trend: stationary wobble" `Quick test_trend_stationary;
    Alcotest.test_case "trend: shallow drift" `Quick test_trend_drift;
    Alcotest.test_case "trend: short series" `Quick
      test_trend_short_series_stationary;
    QCheck_alcotest.to_alcotest stationary_noise_no_changepoint;
    Alcotest.test_case "history: append/load round-trip" `Quick
      test_history_round_trip;
    Alcotest.test_case "history: lineage filtering" `Quick
      test_history_matching_lineage;
    Alcotest.test_case "history: lineages" `Quick test_history_lineages;
    Alcotest.test_case "history: torn manifest recovery" `Quick
      test_history_torn_manifest_recovery;
    Alcotest.test_case "history: trend over archive" `Quick
      test_history_trend_on_archive;
    Alcotest.test_case "history: windowed baseline" `Quick
      test_history_baseline_windowing;
    Alcotest.test_case "history: baseline needs entries" `Quick
      test_history_baseline_empty_entries;
    Alcotest.test_case "history: missing dir errors" `Quick
      test_history_load_missing_dir;
    Alcotest.test_case "sparkline rendering" `Quick test_sparkline;
    Alcotest.test_case "sparkline edge cases" `Quick test_sparkline_edge_cases;
  ]
