(* Tests for the ISA layer: registers, operands, instructions, static
   semantics and the AT&T reader. *)

open Mt_isa

let check = Alcotest.(check string)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Registers                                                           *)
(* ------------------------------------------------------------------ *)

let test_reg_names () =
  check "rax" "%rax" (Reg.name (Reg.gpr64 Reg.RAX));
  check "eax" "%eax" (Reg.name (Reg.gpr32 Reg.RAX));
  check "r10" "%r10" (Reg.name (Reg.gpr64 Reg.R10));
  check "r10d" "%r10d" (Reg.name (Reg.gpr32 Reg.R10));
  check "xmm7" "%xmm7" (Reg.name (Reg.xmm 7));
  check "logical" "r1" (Reg.name (Reg.logical "r1"))

let test_reg_of_name () =
  check_bool "rsi" true (Reg.of_name "%rsi" = Some (Reg.gpr64 Reg.RSI));
  check_bool "no sigil" true (Reg.of_name "rsi" = Some (Reg.gpr64 Reg.RSI));
  check_bool "edi" true (Reg.of_name "%edi" = Some (Reg.gpr32 Reg.RDI));
  check_bool "xmm15" true (Reg.of_name "%xmm15" = Some (Reg.xmm 15));
  check_bool "xmm16 invalid" true (Reg.of_name "%xmm16" = None);
  check_bool "garbage" true (Reg.of_name "%zzz" = None)

let test_reg_roundtrip_all () =
  List.iter
    (fun g ->
      List.iter
        (fun w ->
          let r = Reg.Gpr (g, w) in
          match Reg.of_name (Reg.name r) with
          | Some r' -> check_bool (Reg.name r) true (r = r')
          | None -> Alcotest.fail ("no round-trip for " ^ Reg.name r))
        [ Reg.W8; Reg.W16; Reg.W32; Reg.W64 ])
    Reg.all_gpr_names

let test_reg_widths () =
  check_int "w64" 8 (Reg.width_bytes (Reg.gpr64 Reg.RBX));
  check_int "w32" 4 (Reg.width_bytes (Reg.gpr32 Reg.RBX));
  check_int "xmm" 16 (Reg.width_bytes (Reg.xmm 0))

let test_reg_canonical_equal () =
  check_bool "eax = rax" true (Reg.equal (Reg.gpr32 Reg.RAX) (Reg.gpr64 Reg.RAX));
  check_bool "rax <> rbx" false (Reg.equal (Reg.gpr64 Reg.RAX) (Reg.gpr64 Reg.RBX));
  check_bool "xmm0 <> xmm1" false (Reg.equal (Reg.xmm 0) (Reg.xmm 1))

let test_xmm_range () =
  Alcotest.check_raises "xmm 16" (Invalid_argument "Reg.xmm: 16 out of 0..15")
    (fun () -> ignore (Reg.xmm 16))

let test_allocatable_excludes_special () =
  check_bool "no rsp" true (not (List.mem Reg.RSP Reg.allocatable_gprs));
  check_bool "no rbp" true (not (List.mem Reg.RBP Reg.allocatable_gprs));
  check_bool "no rax (return convention)" true
    (not (List.mem Reg.RAX Reg.allocatable_gprs))

(* ------------------------------------------------------------------ *)
(* Operands                                                            *)
(* ------------------------------------------------------------------ *)

let rsi = Reg.gpr64 Reg.RSI

let rax = Reg.gpr64 Reg.RAX

let test_operand_strings () =
  check "imm" "$42" (Operand.to_string (Operand.imm 42));
  check "neg imm" "$-3" (Operand.to_string (Operand.imm (-3)));
  check "reg" "%rsi" (Operand.to_string (Operand.reg rsi));
  check "mem base" "(%rsi)" (Operand.to_string (Operand.mem ~base:rsi ()));
  check "mem disp" "16(%rsi)" (Operand.to_string (Operand.mem ~base:rsi ~disp:16 ()));
  check "mem full" "-8(%rsi,%rax,8)"
    (Operand.to_string (Operand.mem ~base:rsi ~index:rax ~scale:8 ~disp:(-8) ()));
  check "label" ".L6" (Operand.to_string (Operand.label ".L6"))

let test_operand_bad_scale () =
  Alcotest.check_raises "scale 3" (Invalid_argument "Operand.mem: invalid scale 3")
    (fun () -> ignore (Operand.mem ~base:rsi ~scale:3 ()))

let test_registers_read () =
  check_int "imm reads none" 0 (List.length (Operand.registers_read (Operand.imm 1)));
  check_int "mem reads base+index" 2
    (List.length (Operand.registers_read (Operand.mem ~base:rsi ~index:rax ())))

let test_shift_disp () =
  let m = Operand.mem ~base:rsi ~disp:16 () in
  check "shifted" "48(%rsi)" (Operand.to_string (Operand.shift_disp 32 m));
  check "reg unchanged" "%rsi" (Operand.to_string (Operand.shift_disp 32 (Operand.reg rsi)))

let test_map_registers () =
  let m = Operand.mem ~base:(Reg.logical "r1") ~disp:8 () in
  let mapped =
    Operand.map_registers
      (function Reg.Logical "r1" -> rsi | r -> r)
      m
  in
  check "substituted" "8(%rsi)" (Operand.to_string mapped)

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let load = Insn.make Insn.MOVAPS [ Operand.mem ~base:rsi ~disp:16 (); Operand.reg (Reg.xmm 1) ]

let store = Insn.make Insn.MOVAPS [ Operand.reg (Reg.xmm 1); Operand.mem ~base:rsi () ]

let test_insn_to_string () =
  check "load" "movaps 16(%rsi), %xmm1" (Insn.to_string load);
  check "nop" "nop" (Insn.to_string (Insn.make Insn.NOP []))

let test_mnemonics_roundtrip () =
  List.iter
    (fun op ->
      match Insn.opcode_of_mnemonic (Insn.mnemonic op) with
      | Some op' -> check_bool (Insn.mnemonic op) true (op = op')
      | None -> Alcotest.fail ("no mnemonic round-trip for " ^ Insn.mnemonic op))
    Insn.all_opcodes

let test_suffixed_mnemonics () =
  check_bool "addq" true (Insn.opcode_of_mnemonic "addq" = Some Insn.ADD);
  check_bool "cmpl" true (Insn.opcode_of_mnemonic "cmpl" = Some Insn.CMP);
  check_bool "jnz" true (Insn.opcode_of_mnemonic "jnz" = Some (Insn.Jcc Insn.NE));
  check_bool "unknown" true (Insn.opcode_of_mnemonic "frobnicate" = None)

let test_program_rendering () =
  let program =
    [ Insn.Label "L6"; Insn.Insn load; Insn.Comment "note"; Insn.Directive ".align 16" ]
  in
  check "program" "L6:\n\tmovaps 16(%rsi), %xmm1\n\t# note\n\t.align 16\n"
    (Insn.program_to_string program)

let test_insns_filter () =
  let program = [ Insn.Label "a"; Insn.Insn load; Insn.Comment "c"; Insn.Insn store ] in
  check_int "two instructions" 2 (List.length (Insn.insns program))

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

let test_load_store_classification () =
  check_bool "load is load" true (Semantics.is_load load);
  check_bool "load not store" false (Semantics.is_store load);
  check_bool "store is store" true (Semantics.is_store store);
  check_bool "store not load" false (Semantics.is_load store)

let test_rmw_classification () =
  let rmw = Insn.make Insn.ADD [ Operand.imm 1; Operand.mem ~base:rsi () ] in
  check_bool "rmw loads" true (Semantics.is_load rmw);
  check_bool "rmw stores" true (Semantics.is_store rmw)

let test_cmp_mem_is_pure_load () =
  let c = Insn.make Insn.CMP [ Operand.imm 0; Operand.mem ~base:rsi () ] in
  check_bool "cmp mem loads" true (Semantics.is_load c);
  check_bool "cmp mem does not store" false (Semantics.is_store c)

let test_data_bytes () =
  check_int "movaps" 16 (Semantics.data_bytes load);
  check_int "movss" 4
    (Semantics.data_bytes
       (Insn.make Insn.MOVSS [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ]));
  check_int "movsd" 8
    (Semantics.data_bytes
       (Insn.make Insn.MOVSD [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ]));
  check_int "mov gpr32" 4
    (Semantics.data_bytes
       (Insn.make Insn.MOV [ Operand.mem ~base:rsi (); Operand.reg (Reg.gpr32 Reg.RAX) ]));
  check_int "lea moves nothing" 0
    (Semantics.data_bytes
       (Insn.make Insn.LEA [ Operand.mem ~base:rsi (); Operand.reg rax ]))

let test_alignment_requirements () =
  check_int "movaps requires 16" 16 (Semantics.required_alignment load);
  check_int "movups requires 1" 1
    (Semantics.required_alignment
       (Insn.make Insn.MOVUPS [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ]));
  check_int "movss requires 1" 1
    (Semantics.required_alignment
       (Insn.make Insn.MOVSS [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ]));
  check_int "movaps reg-reg requires nothing" 1
    (Semantics.required_alignment
       (Insn.make Insn.MOVAPS [ Operand.reg (Reg.xmm 0); Operand.reg (Reg.xmm 1) ]))

let test_ports () =
  check_bool "pure load -> load port" true (Semantics.ports load = [ Semantics.Load ]);
  check_bool "store -> store port" true (Semantics.ports store = [ Semantics.Store ]);
  let mul_load = Insn.make Insn.MULSD [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ] in
  check_bool "load-op -> load + fp_mul" true
    (Semantics.ports mul_load = [ Semantics.Load; Semantics.Fp_mul ]);
  let jmp = Insn.make Insn.JMP [ Operand.label "L" ] in
  check_bool "branch port" true (Semantics.ports jmp = [ Semantics.Branch_port ])

let test_destination_and_sources () =
  check_bool "load dest xmm1" true
    (Semantics.destination load = Some (Reg.xmm 1));
  check_bool "store has no reg dest" true (Semantics.destination store = None);
  let add = Insn.make Insn.ADD [ Operand.imm 4; Operand.reg rsi ] in
  check_bool "add dest" true (Semantics.destination add = Some rsi);
  check_bool "add reads dest (rmw)" true
    (List.exists (Reg.equal rsi) (Semantics.sources add));
  check_bool "store reads data + address" true
    (List.exists (Reg.equal (Reg.xmm 1)) (Semantics.sources store)
    && List.exists (Reg.equal rsi) (Semantics.sources store))

let test_flags () =
  let sub = Insn.make Insn.SUB [ Operand.imm 1; Operand.reg rsi ] in
  check_bool "sub sets flags" true (Semantics.sets_flags sub);
  check_bool "mov does not set flags" false (Semantics.sets_flags load);
  check_bool "jcc reads flags" true
    (Semantics.reads_flags (Insn.make (Insn.Jcc Insn.GE) [ Operand.label "L" ]));
  check_bool "jmp does not read flags" false
    (Semantics.reads_flags (Insn.make Insn.JMP [ Operand.label "L" ]))

let expect_invalid i =
  match Semantics.validate i with
  | Ok () -> Alcotest.fail ("expected invalid: " ^ Insn.to_string i)
  | Error _ -> ()

let test_validation_rejects () =
  expect_invalid (Insn.make Insn.MOV [ Operand.mem ~base:rsi (); Operand.mem ~base:rax () ]);
  expect_invalid (Insn.make Insn.MOVAPS [ Operand.reg rsi; Operand.reg (Reg.xmm 0) ]);
  expect_invalid (Insn.make Insn.ADDSD [ Operand.reg (Reg.xmm 0); Operand.mem ~base:rsi () ]);
  expect_invalid (Insn.make Insn.JMP [ Operand.reg rsi ]);
  expect_invalid (Insn.make Insn.ADD [ Operand.imm 1 ]);
  expect_invalid (Insn.make Insn.NOP [ Operand.imm 1 ])

let test_validation_accepts () =
  let ok i =
    match Semantics.validate i with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  in
  ok load;
  ok store;
  ok (Insn.make Insn.ADD [ Operand.imm 48; Operand.reg rsi ]);
  ok (Insn.make Insn.LEA [ Operand.mem ~base:rsi ~disp:8 (); Operand.reg rax ]);
  ok (Insn.make Insn.ADDSD [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 1) ]);
  ok (Insn.make (Insn.Jcc Insn.GE) [ Operand.label "L6" ]);
  ok (Insn.make Insn.RET []);
  (* Logical registers are fine pre-allocation. *)
  ok (Insn.make Insn.MOVAPS
        [ Operand.mem ~base:(Reg.logical "r1") (); Operand.reg (Reg.logical "x") ])

(* ------------------------------------------------------------------ *)
(* AT&T reader                                                         *)
(* ------------------------------------------------------------------ *)

let test_att_operands () =
  check_bool "imm" true (Att.parse_operand "$48" = Operand.imm 48);
  check_bool "reg" true (Att.parse_operand "%rsi" = Operand.reg rsi);
  check_bool "mem" true
    (Operand.equal (Att.parse_operand "16(%rsi)") (Operand.mem ~base:rsi ~disp:16 ()));
  check_bool "mem indexed" true
    (Operand.equal
       (Att.parse_operand "-8(%rsi,%rax,4)")
       (Operand.mem ~base:rsi ~index:rax ~scale:4 ~disp:(-8) ()));
  check_bool "index only" true
    (Operand.equal (Att.parse_operand "(,%rax,8)") (Operand.mem ~index:rax ~scale:8 ()))

let test_att_lines () =
  check_bool "blank" true (Att.parse_line "   " = None);
  check_bool "label" true (Att.parse_line "L6:" = Some (Insn.Label "L6"));
  check_bool "directive" true (Att.parse_line ".align 16" = Some (Insn.Directive ".align 16"));
  check_bool "comment" true (Att.parse_line "# hello" = Some (Insn.Comment "hello"));
  match Att.parse_line "movaps 16(%rsi), %xmm1  # trailing" with
  | Some (Insn.Insn i) -> check_bool "insn" true (Insn.equal i load)
  | _ -> Alcotest.fail "expected instruction"

let test_att_program_roundtrip () =
  let text =
    "\t.text\nL6:\n\tmovaps 16(%rsi), %xmm1\n\tadd $48, %rsi\n\tsub $12, %rdi\n\tjge L6\n\tret\n"
  in
  let program = Att.parse_program text in
  check_int "item count" 7 (List.length program);
  (* Re-render and re-parse: same instructions. *)
  let again = Att.parse_program (Insn.program_to_string program) in
  check_bool "round-trip" true
    (List.equal Insn.equal (Insn.insns program) (Insn.insns again))

let test_att_errors () =
  let bad s =
    match Att.parse_program s with
    | exception Att.Syntax_error _ -> ()
    | _ -> Alcotest.fail ("expected syntax error for " ^ s)
  in
  bad "frobnicate %rax";
  bad "movaps 16(%zzz), %xmm0";
  bad "movaps $1, $2";
  bad "add $oops, %rsi"

(* ------------------------------------------------------------------ *)
(* Encoded lengths                                                     *)
(* ------------------------------------------------------------------ *)

let test_encode_known_lengths () =
  let len s =
    match Att.parse_line s with
    | Some (Insn.Insn i) -> Encode.length i
    | _ -> Alcotest.fail ("parse: " ^ s)
  in
  (* Checked against GNU as encodings. *)
  check_int "movaps (%rsi), %xmm0" 3 (len "movaps (%rsi), %xmm0");
  check_int "movaps 16(%rsi), %xmm1" 4 (len "movaps 16(%rsi), %xmm1");
  check_int "movss (%rsi), %xmm0" 4 (len "movss (%rsi), %xmm0");
  check_int "add $48, %rsi" 4 (len "add $48, %rsi");
  check_int "add $1, %eax" 3 (len "add $1, %eax");
  check_int "add $1000, %rsi" 7 (len "add $1000, %rsi");
  check_int "jge" 2 (len "jge L6");
  check_int "ret" 1 (len "ret");
  check_int "mov %rdi, %rax" 3 (len "mov %rdi, %rax");
  check_int "movsd (%rdx,%rax,8), %xmm0" 5 (len "movsd (%rdx,%rax,8), %xmm0")

let test_encode_rex_for_extended_registers () =
  let len s =
    match Att.parse_line s with
    | Some (Insn.Insn i) -> Encode.length i
    | _ -> Alcotest.fail ("parse: " ^ s)
  in
  check_bool "r10 needs a REX over eax" true
    (len "add $1, %r10" > len "add $1, %eax")

let test_loop_body_bytes () =
  let program =
    Att.parse_program
      "\tnop\nL6:\n\tmovaps (%rsi), %xmm0\n\tadd $16, %rsi\n\tsub $1, %rdi\n\tjge L6\n\tret\n"
  in
  (* 3 + 4 + 4 + 2 = 13 bytes inside the loop; the nop and ret are
     outside. *)
  check_int "loop body" 13 (Encode.loop_body_bytes program);
  check_bool "fits" true (Encode.fits_loop_buffer program);
  check_bool "tiny buffer" false (Encode.fits_loop_buffer ~buffer_bytes:8 program)

let test_program_bytes_additive () =
  let program =
    Att.parse_program "\tnop\n\tnop\n\tret\n"
  in
  check_int "3 bytes" 3 (Encode.program_bytes program)

(* Property: emitted instructions parse back to themselves. *)
let arbitrary_insn =
  let open QCheck.Gen in
  let reg = oneofl [ rsi; rax; Reg.gpr64 Reg.RDX; Reg.xmm 0; Reg.xmm 5 ] in
  let gpr = oneofl [ rsi; rax; Reg.gpr64 Reg.RDX ] in
  let xmm = oneofl [ Reg.xmm 0; Reg.xmm 5; Reg.xmm 15 ] in
  let mem =
    map2 (fun base disp -> Operand.mem ~base ~disp ()) gpr (int_range (-64) 256)
  in
  ignore reg;
  oneof
    [
      map2 (fun m x -> Insn.make Insn.MOVAPS [ m; Operand.reg x ]) mem xmm;
      map2 (fun x m -> Insn.make Insn.MOVSS [ Operand.reg x; m ]) xmm mem;
      map2 (fun n r -> Insn.make Insn.ADD [ Operand.imm n; Operand.reg r ])
        (int_range 0 1024) gpr;
      map2 (fun n r -> Insn.make Insn.SUB [ Operand.imm n; Operand.reg r ])
        (int_range 0 1024) gpr;
      map2 (fun m x -> Insn.make Insn.MULSD [ m; Operand.reg x ]) mem xmm;
      return (Insn.make Insn.RET []);
    ]

let prop_att_roundtrip =
  QCheck.Test.make ~count:300 ~name:"att parse(print(insn)) = insn"
    (QCheck.make arbitrary_insn) (fun i ->
      match Att.parse_line (Insn.to_string i) with
      | Some (Insn.Insn i') -> Insn.equal i i'
      | _ -> false)

let prop_encode_lengths_sane =
  QCheck.Test.make ~count:300 ~name:"encode: 1..15 bytes (the x86 limit)"
    (QCheck.make arbitrary_insn) (fun i ->
      let n = Encode.length i in
      n >= 1 && n <= 15)

let prop_loads_and_stores_disjoint_for_moves =
  QCheck.Test.make ~count:300 ~name:"a move is never both load and store"
    (QCheck.make arbitrary_insn) (fun i ->
      if Semantics.is_memory_move i then
        not (Semantics.is_load i && Semantics.is_store i)
      else true)

let tests =
  [
    Alcotest.test_case "register names" `Quick test_reg_names;
    Alcotest.test_case "register of_name" `Quick test_reg_of_name;
    Alcotest.test_case "register name round-trip (all)" `Quick test_reg_roundtrip_all;
    Alcotest.test_case "register widths" `Quick test_reg_widths;
    Alcotest.test_case "canonical equality" `Quick test_reg_canonical_equal;
    Alcotest.test_case "xmm range checked" `Quick test_xmm_range;
    Alcotest.test_case "allocatable excludes rsp/rbp/rax" `Quick test_allocatable_excludes_special;
    Alcotest.test_case "operand rendering" `Quick test_operand_strings;
    Alcotest.test_case "operand bad scale" `Quick test_operand_bad_scale;
    Alcotest.test_case "operand registers_read" `Quick test_registers_read;
    Alcotest.test_case "operand shift_disp" `Quick test_shift_disp;
    Alcotest.test_case "operand map_registers" `Quick test_map_registers;
    Alcotest.test_case "instruction rendering" `Quick test_insn_to_string;
    Alcotest.test_case "mnemonic round-trip (all opcodes)" `Quick test_mnemonics_roundtrip;
    Alcotest.test_case "suffixed mnemonics" `Quick test_suffixed_mnemonics;
    Alcotest.test_case "program rendering" `Quick test_program_rendering;
    Alcotest.test_case "insns filter" `Quick test_insns_filter;
    Alcotest.test_case "load/store classification" `Quick test_load_store_classification;
    Alcotest.test_case "rmw classification" `Quick test_rmw_classification;
    Alcotest.test_case "cmp-with-memory is a pure load" `Quick test_cmp_mem_is_pure_load;
    Alcotest.test_case "data bytes" `Quick test_data_bytes;
    Alcotest.test_case "alignment requirements" `Quick test_alignment_requirements;
    Alcotest.test_case "port demands" `Quick test_ports;
    Alcotest.test_case "destination and sources" `Quick test_destination_and_sources;
    Alcotest.test_case "flag behaviour" `Quick test_flags;
    Alcotest.test_case "validation rejects bad shapes" `Quick test_validation_rejects;
    Alcotest.test_case "validation accepts good shapes" `Quick test_validation_accepts;
    Alcotest.test_case "att operand parsing" `Quick test_att_operands;
    Alcotest.test_case "att line parsing" `Quick test_att_lines;
    Alcotest.test_case "att program round-trip" `Quick test_att_program_roundtrip;
    Alcotest.test_case "att errors" `Quick test_att_errors;
    Alcotest.test_case "encode known lengths" `Quick test_encode_known_lengths;
    Alcotest.test_case "encode REX" `Quick test_encode_rex_for_extended_registers;
    Alcotest.test_case "loop body bytes" `Quick test_loop_body_bytes;
    Alcotest.test_case "program bytes additive" `Quick test_program_bytes_additive;
    QCheck_alcotest.to_alcotest prop_att_roundtrip;
    QCheck_alcotest.to_alcotest prop_loads_and_stores_disjoint_for_moves;
    QCheck_alcotest.to_alcotest prop_encode_lengths_sane;
  ]
