(* Tests for the workload builders: stream specs and the matmul
   motivating example. *)

open Mt_machine
open Mt_creator
open Mt_kernels

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let x5650 = Config.nehalem_x5650_2s

(* ------------------------------------------------------------------ *)
(* Stream specs                                                        *)
(* ------------------------------------------------------------------ *)

let test_loadstore_spec_valid () =
  check_bool "valid" true (Result.is_ok (Spec.validate (Streams.loadstore_spec ())))

let test_loadstore_default_counts () =
  check_int "510 (paper)" 510 (List.length (Creator.generate (Streams.loadstore_spec ())))

let test_move_width_counts () =
  check_int "2040 (paper)" 2040 (List.length (Creator.generate (Streams.move_width_spec ())))

let test_loadstore_custom () =
  let spec =
    Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSD ~stride:8 ~unroll:(2, 4)
      ~swap_after:false ()
  in
  let variants = Creator.generate spec in
  check_int "three unrolls" 3 (List.length variants);
  List.iter
    (fun v ->
      let abi = Option.get v.Variant.abi in
      check_int "bytes per pass" (8 * abi.Abi.unroll) abi.Abi.bytes_per_pass)
    variants

let test_multi_array_spec () =
  let spec = Streams.multi_array_spec ~arrays:4 () in
  check_bool "valid" true (Result.is_ok (Spec.validate spec));
  let variants = Creator.generate spec in
  check_int "one variant" 1 (List.length variants);
  let abi = Option.get (List.hd variants).Variant.abi in
  check_int "four pointers" 4 (List.length abi.Abi.pointers);
  check_int "four loads per pass" 4 abi.Abi.loads_per_pass

let test_multi_array_bad_count () =
  check_bool "zero arrays rejected" true
    (try ignore (Streams.multi_array_spec ~arrays:0 ()); false
     with Invalid_argument _ -> true)

let test_movss_unrolled_spec () =
  let variants = Creator.generate (Streams.movss_unrolled_spec ~unroll:5 ()) in
  check_int "one variant" 1 (List.length variants);
  check_int "fixed unroll" 5 (List.hd variants).Variant.unroll

let test_description_xml_parses_back () =
  let spec = Streams.loadstore_spec () in
  match Description.of_string (Streams.description_xml spec) with
  | Ok again -> check_bool "round-trip" true (again = spec)
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Matmul                                                              *)
(* ------------------------------------------------------------------ *)

let test_matmul_original_compiles () =
  List.iter
    (fun u ->
      match Core.compile (Matmul.original_program ~n:100 ~unroll:u) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Core.error_to_string e))
    [ 1; 2; 4; 8 ]

let test_matmul_micro_matches_structure () =
  let variants = Creator.generate (Matmul.micro_spec ~n:100 ~unroll:(1, 1)) in
  check_int "one variant" 1 (List.length variants);
  let v = List.hd variants in
  let micro_ops =
    List.map (fun i -> i.Mt_isa.Insn.op) (Mt_isa.Insn.insns (Variant.concrete_body v))
  in
  check_bool "has mulsd and addsd" true
    (List.mem Mt_isa.Insn.MULSD micro_ops && List.mem Mt_isa.Insn.ADDSD micro_ops);
  let abi = Option.get v.Variant.abi in
  check_int "three matrices" 3 (List.length abi.Abi.pointers)

let test_matmul_driver_runs () =
  let d =
    match Matmul.make_driver ~machine:x5650 ~n:64 (`Original 1) with
    | Ok d -> d
    | Error msg -> Alcotest.fail msg
  in
  match Matmul.sample_run ~rows:1 ~cols:4 d with
  | Ok s ->
    check_int "iterations" (4 * 64) s.Matmul.iterations;
    check_bool "cycles positive" true (s.Matmul.cycles_per_iteration > 0.)
  | Error msg -> Alcotest.fail msg

let test_matmul_micro_driver_agrees_with_original () =
  let cycles source =
    let d =
      match Matmul.make_driver ~machine:x5650 ~n:64 source with
      | Ok d -> d
      | Error msg -> Alcotest.fail msg
    in
    match Matmul.sample_run ~rows:1 ~cols:8 ~warm_cols:8 d with
    | Ok s -> s.Matmul.cycles_per_iteration
    | Error msg -> Alcotest.fail msg
  in
  let original = cycles (`Original 2) in
  let micro =
    let variants = Creator.generate (Matmul.micro_spec ~n:64 ~unroll:(2, 2)) in
    cycles (`Micro (List.hd variants))
  in
  (* The micro-benchmark predicts the original within a few percent
     (the Section 2 claim). *)
  check_bool "within 10%" true (Float.abs (micro -. original) /. original < 0.10)

let test_matmul_hierarchy_cliff () =
  (* The Fig. 3 cliff: once the column stride exceeds a page (n >= 512),
     iterations get much slower. *)
  let cycles n =
    let d =
      match Matmul.make_driver ~machine:x5650 ~n (`Original 1) with
      | Ok d -> d
      | Error msg -> Alcotest.fail msg
    in
    match Matmul.sample_run ~rows:1 ~cols:8 ~warm_cols:8 d with
    | Ok s -> s.Matmul.cycles_per_iteration
    | Error msg -> Alcotest.fail msg
  in
  check_bool "n=600 much slower than n=200" true (cycles 600 > 1.5 *. cycles 200)

let test_matmul_unroll_improves () =
  let cycles u =
    let d =
      match Matmul.make_driver ~machine:x5650 ~n:128 (`Original u) with
      | Ok d -> d
      | Error msg -> Alcotest.fail msg
    in
    match Matmul.sample_run ~rows:1 ~cols:8 ~warm_cols:8 d with
    | Ok s -> s.Matmul.cycles_per_iteration
    | Error msg -> Alcotest.fail msg
  in
  check_bool "unroll 8 beats unroll 1" true (cycles 8 < cycles 1)

let test_matmul_bad_args () =
  check_bool "n=0 rejected" true
    (Result.is_error (Matmul.make_driver ~machine:x5650 ~n:0 (`Original 1)));
  check_bool "unroll=0 rejected" true
    (try ignore (Matmul.original_program ~n:10 ~unroll:0); false
     with Invalid_argument _ -> true)

let test_matrix_bytes () = check_int "200x200 doubles" 320000 (Matmul.matrix_bytes ~n:200)

let test_tiled_program_validates () =
  check_bool "tile must divide n" true
    (try ignore (Matmul.tiled_program ~n:100 ~tile:33 ~rows:1 ~jj_tiles:1); false
     with Invalid_argument _ -> true);
  check_bool "jj_tiles bounded" true
    (try ignore (Matmul.tiled_program ~n:100 ~tile:50 ~rows:1 ~jj_tiles:3); false
     with Invalid_argument _ -> true);
  (* A legal sampled program compiles. *)
  match Core.compile (Matmul.tiled_program ~n:100 ~tile:50 ~rows:2 ~jj_tiles:1) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Core.error_to_string e)

let test_tiled_iteration_count () =
  (* rows x (jj_tiles*tile) x n inner iterations, counted in rax. *)
  let program = Matmul.tiled_program ~n:64 ~tile:16 ~rows:2 ~jj_tiles:1 in
  let memory = Memory.create x5650 in
  let open Mt_isa in
  let init =
    [ (Reg.gpr64 Reg.RDI, 64); (Reg.gpr64 Reg.RCX, 1 lsl 24);
      (Reg.gpr64 Reg.RSI, 1 lsl 25); (Reg.gpr64 Reg.RDX, 1 lsl 26) ]
  in
  match Core.run_program ~init x5650 memory program with
  | Ok r -> check_int "2 * 16 * 64 iterations" (2 * 16 * 64) r.Core.rax
  | Error e -> Alcotest.fail (Core.error_to_string e)

let test_tiling_removes_cliff () =
  let naive = Matmul.tiled_cycles ~machine:x5650 ~n:600 ~tile:600 () in
  let tiled = Matmul.tiled_cycles ~machine:x5650 ~n:600 ~tile:50 () in
  match naive, tiled with
  | Ok naive, Ok tiled -> check_bool "2x+ gain past the cliff" true (tiled *. 2. < naive)
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_tiling_neutral_below_cliff () =
  let naive = Matmul.tiled_cycles ~machine:x5650 ~n:200 ~tile:200 () in
  let tiled = Matmul.tiled_cycles ~machine:x5650 ~n:200 ~tile:50 () in
  match naive, tiled with
  | Ok naive, Ok tiled ->
    check_bool "within 15% when everything is cached" true
      (Float.abs (tiled -. naive) /. naive < 0.15)
  | Error m, _ | _, Error m -> Alcotest.fail m

let tests =
  [
    Alcotest.test_case "loadstore spec valid" `Quick test_loadstore_spec_valid;
    Alcotest.test_case "loadstore 510 variants" `Quick test_loadstore_default_counts;
    Alcotest.test_case "move-width 2040 variants" `Quick test_move_width_counts;
    Alcotest.test_case "loadstore custom" `Quick test_loadstore_custom;
    Alcotest.test_case "multi-array spec" `Quick test_multi_array_spec;
    Alcotest.test_case "multi-array bad count" `Quick test_multi_array_bad_count;
    Alcotest.test_case "movss unrolled spec" `Quick test_movss_unrolled_spec;
    Alcotest.test_case "description xml parses back" `Quick test_description_xml_parses_back;
    Alcotest.test_case "matmul original compiles" `Quick test_matmul_original_compiles;
    Alcotest.test_case "matmul micro structure" `Quick test_matmul_micro_matches_structure;
    Alcotest.test_case "matmul driver runs" `Quick test_matmul_driver_runs;
    Alcotest.test_case "matmul micro agrees with original" `Quick test_matmul_micro_driver_agrees_with_original;
    Alcotest.test_case "matmul hierarchy cliff" `Quick test_matmul_hierarchy_cliff;
    Alcotest.test_case "matmul unroll improves" `Quick test_matmul_unroll_improves;
    Alcotest.test_case "matmul bad arguments" `Quick test_matmul_bad_args;
    Alcotest.test_case "matrix bytes" `Quick test_matrix_bytes;
    Alcotest.test_case "tiled program validates" `Quick test_tiled_program_validates;
    Alcotest.test_case "tiled iteration count" `Quick test_tiled_iteration_count;
    Alcotest.test_case "tiling removes the cliff" `Slow test_tiling_removes_cliff;
    Alcotest.test_case "tiling neutral below the cliff" `Slow test_tiling_neutral_below_cliff;
  ]
