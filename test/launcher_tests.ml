(* Tests for MicroLauncher: options, kernel sources, the measurement
   protocol, parallel modes, alignment sweeps and reports. *)

open Mt_machine
open Mt_creator
open Mt_launcher

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let x5650 = Config.nehalem_x5650_2s

let defaults = Options.default x5650

(* A small kernel for most tests: movss loads, unroll 1..2. *)
let kernel_variants =
  Creator.generate
    (Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
       ~unroll:(1, 2) ~swap_after:false ())

let variant_u u =
  List.find (fun v -> v.Variant.unroll = u) kernel_variants

let quick_opts =
  {
    defaults with
    Options.array_bytes = 16 * 1024;
    repetitions = 2;
    experiments = 3;
  }

(* ------------------------------------------------------------------ *)
(* Options                                                             *)
(* ------------------------------------------------------------------ *)

let test_more_than_thirty_options () =
  check_bool "paper claim" true (Options.count > 30)

let test_option_validation () =
  let bad opts = check_bool "rejected" true (Result.is_error (Options.validate opts)) in
  bad { defaults with Options.array_bytes = 0 };
  bad { defaults with Options.repetitions = 0 };
  bad { defaults with Options.experiments = 0 };
  bad { defaults with Options.cores = 13 };
  bad { defaults with Options.openmp_threads = 42 };
  bad { defaults with Options.pin_core = Some 99 };
  bad { defaults with Options.alignment_modulus = 100 };
  bad { defaults with Options.alignments = [ 0; 8192 ] };
  bad { defaults with Options.frequency_ghz = Some 0. };
  bad { defaults with Options.drop_first_experiment = true; experiments = 1 };
  check_bool "defaults valid" true (Result.is_ok (Options.validate defaults))

let test_effective_machine () =
  let opts = { defaults with Options.frequency_ghz = Some 1.6 } in
  Alcotest.(check (float 1e-9)) "override applied" 1.6
    (Options.effective_machine opts).Config.core_ghz;
  Alcotest.(check (float 1e-9)) "nominal kept" 2.67
    (Options.effective_machine opts).Config.nominal_ghz

let test_alignment_for_cycles () =
  let opts = { defaults with Options.alignments = [ 0; 64 ] } in
  check_int "array 0" 0 (Options.alignment_for opts 0);
  check_int "array 1" 64 (Options.alignment_for opts 1);
  check_int "array 2 cycles" 0 (Options.alignment_for opts 2);
  check_int "empty list" 0 (Options.alignment_for defaults 5)

let test_noise_env_mapping () =
  let opts = { defaults with Options.pinned = false } in
  check_bool "unpinned env" false (Options.noise_env opts).Noise.pinned

(* ------------------------------------------------------------------ *)
(* Source loading                                                      *)
(* ------------------------------------------------------------------ *)

let test_source_from_variant () =
  match Source.load (Source.From_variant (variant_u 1)) with
  | Ok (_, abi) -> check_int "unroll" 1 abi.Abi.unroll
  | Error msg -> Alcotest.fail msg

let test_source_from_assembly_text () =
  let asm = Emit.assembly (variant_u 2) in
  match Source.load (Source.From_assembly_text asm) with
  | Error msg -> Alcotest.fail msg
  | Ok (program, abi) ->
    check_int "unroll from header" 2 abi.Abi.unroll;
    check_int "loads from header" 2 abi.Abi.loads_per_pass;
    check_bool "counter" true (Mt_isa.Reg.equal abi.Abi.counter (Mt_isa.Reg.gpr64 Mt_isa.Reg.RDI));
    check_bool "program non-empty" true (Mt_isa.Insn.insns program <> [])

let test_source_from_file () =
  let dir = Filename.get_temp_dir_name () in
  let path = Emit.write_assembly ~dir (variant_u 1) in
  (match Source.load (Source.From_file path) with
  | Ok (_, abi) -> check_int "unroll" 1 abi.Abi.unroll
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_source_missing_abi_header () =
  match Source.load (Source.From_assembly_text "L:\n\tret\n") with
  | Error msg -> check_bool "mentions abi" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected an error without the abi header"

let test_source_abi_roundtrip_through_file () =
  (* The creator→launcher link: emitted ABI comments carry everything
     the launcher needs. *)
  let v = variant_u 2 in
  let original = Option.get v.Variant.abi in
  match Source.load (Source.From_assembly_text (Emit.assembly v)) with
  | Error msg -> Alcotest.fail msg
  | Ok (_, parsed) ->
    check_int "step" original.Abi.counter_step parsed.Abi.counter_step;
    check_int "bytes" original.Abi.bytes_per_pass parsed.Abi.bytes_per_pass;
    check_bool "pointers" true
      (List.length original.Abi.pointers = List.length parsed.Abi.pointers)

let test_object_container_roundtrip () =
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir "mt_test_bundle.mto" in
  Emit.write_object ~path kernel_variants;
  (match Source.object_functions path with
  | Ok names ->
    check_int "both functions listed" (List.length kernel_variants) (List.length names)
  | Error msg -> Alcotest.fail msg);
  (* Pick one by name and measure it. *)
  let abi = Option.get (variant_u 2).Variant.abi in
  (match
     Launcher.launch quick_opts
       (Source.From_object (path, Some abi.Abi.function_name))
   with
  | Ok r -> Alcotest.(check string) "right function" abi.Abi.function_name r.Report.id
  | Error msg -> Alcotest.fail msg);
  (* Ambiguous selection is a helpful error. *)
  (match Source.load (Source.From_object (path, None)) with
  | Error msg -> check_bool "mentions --function" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected ambiguity error");
  (* Unknown name errors with the available list. *)
  (match Source.load (Source.From_object (path, Some "nope")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-function error");
  Sys.remove path

let test_object_single_function_implicit () =
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir "mt_test_single.mto" in
  Emit.write_object ~path [ variant_u 1 ];
  (match Launcher.launch quick_opts (Source.From_file path) with
  | Ok r -> check_bool "measured" true (r.Report.value > 0.)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let prepare_ok ?sharers ?passes opts v =
  match
    Protocol.prepare ?sharers ?passes opts (Variant.concrete_body v)
      (Option.get v.Variant.abi)
  with
  | Ok p -> p
  | Error msg -> Alcotest.fail msg

let test_protocol_passes_default_to_one_traversal () =
  let p = prepare_ok quick_opts (variant_u 2) in
  (* 16 KiB array, 8 bytes per pass at unroll 2. *)
  check_int "passes" (16 * 1024 / 8) (Protocol.passes_per_call p)

let test_protocol_trip_override () =
  let opts = { quick_opts with Options.trip_passes = Some 100 } in
  let p = prepare_ok opts (variant_u 1) in
  check_int "passes" 100 (Protocol.passes_per_call p)

let test_protocol_run_once_counts () =
  let p = prepare_ok ~passes:50 quick_opts (variant_u 1) in
  match Protocol.run_once p with
  | Ok outcome -> check_int "rax counts passes" 50 outcome.Core.rax
  | Error msg -> Alcotest.fail msg

let test_protocol_array_alignment_respected () =
  let opts = { quick_opts with Options.alignments = [ 48 ] } in
  let p = prepare_ok opts (variant_u 1) in
  List.iter
    (fun base -> check_int "offset" 48 (base mod 4096))
    (Protocol.array_bases p)

let test_measure_report_shape () =
  let p = prepare_ok quick_opts (variant_u 1) in
  match Protocol.measure p with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check_int "experiments" 3 (Array.length r.Report.experiments);
    check_bool "value positive" true (r.Report.value > 0.);
    check_bool "median is the value" true (r.Report.value = r.Report.summary.Mt_stats.median);
    Alcotest.(check string) "unit" "tsc-cycles" r.Report.unit_label;
    Alcotest.(check string) "per" "pass" r.Report.per_label

let test_measure_reproducible () =
  let value () =
    let p = prepare_ok quick_opts (variant_u 1) in
    match Protocol.measure p with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check (float 1e-12)) "deterministic" (value ()) (value ())

let test_per_unit_scaling () =
  let measure per =
    let opts = { quick_opts with Options.per } in
    let p = prepare_ok opts (variant_u 2) in
    match Protocol.measure p with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  let per_pass = measure Options.Per_pass in
  let per_insn = measure Options.Per_instruction in
  let per_elem = measure Options.Per_element in
  (* Unroll 2, loads only: 2 instructions and 2 elements per pass. *)
  Alcotest.(check (float 0.02)) "instruction = pass / 2" (per_pass /. 2.) per_insn;
  Alcotest.(check (float 0.02)) "element = pass / 2" (per_pass /. 2.) per_elem

let test_eval_method_conversion () =
  let at_freq freq eval_method =
    let opts =
      { quick_opts with Options.frequency_ghz = Some freq; eval_method }
    in
    let p = prepare_ok opts (variant_u 1) in
    match Protocol.measure p with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  (* L1-resident work: wall-clock ns shrink with frequency, rdtsc
     cycles stay put only for off-core work — here they grow with the
     ratio. *)
  let ns_fast = at_freq 2.67 Options.Wallclock_ns in
  let ns_slow = at_freq 1.335 Options.Wallclock_ns in
  Alcotest.(check (float 0.05)) "ns double at half clock" (2. *. ns_fast) ns_slow;
  let tsc_fast = at_freq 2.67 Options.Rdtsc in
  let tsc_slow = at_freq 1.335 Options.Rdtsc in
  Alcotest.(check (float 0.05)) "tsc cycles also double (core-bound)" (2. *. tsc_fast) tsc_slow

let test_overhead_subtraction_reduces_value () =
  let with_flag subtract_overhead =
    let opts = { quick_opts with Options.subtract_overhead; trip_passes = Some 64 } in
    let p = prepare_ok opts (variant_u 1) in
    match Protocol.measure p with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  check_bool "subtracted is smaller" true (with_flag true < with_flag false)

let test_stability_claim () =
  (* The paper's Section 4.7: the stable environment produces a much
     tighter spread than the hostile one. *)
  let spread pinned interrupts_masked =
    let opts =
      { quick_opts with Options.pinned; interrupts_masked; experiments = 10 }
    in
    let p = prepare_ok opts (variant_u 1) in
    match Protocol.measure p with
    | Ok r -> Mt_stats.relative_spread r.Report.experiments
    | Error msg -> Alcotest.fail msg
  in
  let stable = spread true true in
  let hostile = spread false false in
  check_bool "stable is much tighter" true (stable *. 3. < hostile)

(* ------------------------------------------------------------------ *)
(* Modes                                                               *)
(* ------------------------------------------------------------------ *)

let test_launch_dispatch_seq () =
  match Launcher.launch quick_opts (Source.From_variant (variant_u 1)) with
  | Ok r -> Alcotest.(check string) "mode" "seq" r.Report.mode
  | Error msg -> Alcotest.fail msg

let test_fork_mode () =
  let opts = { quick_opts with Options.cores = 4; array_bytes = 64 * 1024 } in
  match Launcher.run_fork opts (Source.From_variant (variant_u 1)) with
  | Error msg -> Alcotest.fail msg
  | Ok outcome ->
    check_int "per-core reports" 4 (List.length outcome.Fork_mode.per_core);
    Alcotest.(check string) "mode" "fork:4" outcome.Fork_mode.aggregate.Report.mode;
    (* Sibling processes see the same machine, different noise. *)
    (match outcome.Fork_mode.per_core with
    | a :: b :: _ ->
      check_bool "noise differs across cores" true
        (a.Report.experiments <> b.Report.experiments)
    | _ -> Alcotest.fail "expected cores")

let test_fork_contention_raises_ram_cost () =
  let ram_opts =
    {
      quick_opts with
      Options.array_bytes = 1024 * 1024;
      warmup = false;
      repetitions = 1;
      experiments = 1;
    }
  in
  let value cores =
    let opts = { ram_opts with Options.cores = cores } in
    match Launcher.launch opts (Source.From_variant (variant_u 2)) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  check_bool "12 cores slower than 1" true (value 12 > value 1 *. 1.2)

let test_fork_nonlocal_allocation_saturates_earlier () =
  (* With parent-side allocation all six processes stream from one
     socket's controller: visibly slower than first-touch local
     allocation at the same core count. *)
  let ram_opts =
    {
      quick_opts with
      Options.array_bytes = 1024 * 1024;
      warmup = false;
      repetitions = 1;
      experiments = 1;
      cores = 6;
    }
  in
  let value local_alloc =
    match
      Launcher.launch { ram_opts with Options.local_alloc }
        (Source.From_variant (variant_u 2))
    with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  check_bool "one controller is slower" true (value false > value true *. 1.3)

let test_openmp_mode () =
  let opts = { quick_opts with Options.openmp_threads = 4 } in
  match Launcher.run_openmp opts (Source.From_variant (variant_u 1)) with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check string) "mode" "openmp:4" r.Report.mode;
    check_bool "value positive" true (r.Report.value > 0.)

let test_openmp_beats_sequential_on_big_array () =
  (* Large enough that the parallel-region overhead amortises (on the
     tiny default array OpenMP legitimately loses to its own fork/join
     cost — the Table 2 setup-overhead effect). *)
  let big = { quick_opts with Options.array_bytes = 512 * 1024 } in
  let seq =
    match Launcher.launch big (Source.From_variant (variant_u 1)) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  let omp =
    match
      Launcher.launch
        { big with Options.openmp_threads = 4 }
        (Source.From_variant (variant_u 1))
    with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  check_bool "openmp faster per pass" true (omp < seq)

let test_openmp_overhead_dominates_tiny_array () =
  let seq =
    match Launcher.launch quick_opts (Source.From_variant (variant_u 1)) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  let omp =
    match
      Launcher.launch
        { quick_opts with Options.openmp_threads = 4 }
        (Source.From_variant (variant_u 1))
    with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  check_bool "fork/join overhead dominates a 16 KiB job" true (omp > seq)

let test_standalone_fork () =
  let program =
    [
      Mt_isa.Insn.Insn (Mt_isa.Insn.make Mt_isa.Insn.NOP []);
      Mt_isa.Insn.Insn (Mt_isa.Insn.make Mt_isa.Insn.RET []);
    ]
  in
  let opts = { quick_opts with Options.cores = 4 } in
  match Launcher.run_standalone opts program with
  | Ok r -> Alcotest.(check string) "fork aggregate" "fork:4" r.Report.mode
  | Error msg -> Alcotest.fail msg

let test_standalone_mode () =
  let program =
    [
      Mt_isa.Insn.Insn (Mt_isa.Insn.make Mt_isa.Insn.NOP []);
      Mt_isa.Insn.Insn (Mt_isa.Insn.make Mt_isa.Insn.RET []);
    ]
  in
  match Launcher.run_standalone quick_opts program with
  | Ok r ->
    Alcotest.(check string) "mode" "standalone" r.Report.mode;
    Alcotest.(check string) "per call" "call" r.Report.per_label
  | Error msg -> Alcotest.fail msg

let test_run_variants_batch () =
  let outcomes = Launcher.run_variants quick_opts kernel_variants in
  check_int "all measured" (List.length kernel_variants) (List.length outcomes);
  check_bool "all ok" true
    (List.for_all (fun (_, r) -> Result.is_ok r) outcomes)

let test_best_variant () =
  let opts = { quick_opts with Options.per = Options.Per_element } in
  match Launcher.best_variant opts kernel_variants with
  | Error msg -> Alcotest.fail msg
  | Ok None -> Alcotest.fail "expected a winner"
  | Ok (Some (v, _)) ->
    (* Per element, the unrolled kernel wins. *)
    check_int "unroll 2 wins per element" 2 v.Variant.unroll

(* ------------------------------------------------------------------ *)
(* Alignment sweeps                                                    *)
(* ------------------------------------------------------------------ *)

let test_alignment_configs () =
  let configs = Alignment.configs ~arrays:2 ~candidates:[ 0; 64; 128 ] () in
  check_int "cartesian" 9 (List.length configs);
  let capped = Alignment.configs ~arrays:3 ~candidates:[ 0; 64; 128 ] ~limit:5 () in
  check_int "capped" 5 (List.length capped)

let test_alignment_configs_bounded () =
  (* 8 candidates over 8 arrays is a 16.7M-configuration space; asking
     for 4096 must do O(4096) work, not materialize the product. *)
  let t0 = Unix.gettimeofday () in
  let cs =
    Alignment.configs ~arrays:8 ~candidates:[ 0; 8; 16; 24; 32; 40; 48; 56 ]
      ~limit:4096 ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check_int "limit respected" 4096 (List.length cs);
  check_bool "prompt (O(limit), not O(candidates^arrays))" true (elapsed < 2.);
  (* lexicographic order, first array most significant *)
  check_bool "first config" true (List.hd cs = [ 0; 0; 0; 0; 0; 0; 0; 0 ]);
  check_bool "second bumps the last array" true
    (List.nth cs 1 = [ 0; 0; 0; 0; 0; 0; 0; 8 ]);
  (* spaces smaller than the limit still yield the full product *)
  check_bool "full product, old order" true
    (Alignment.configs ~arrays:2 ~candidates:[ 0; 64 ] ~limit:100 ()
    = [ [ 0; 0 ]; [ 0; 64 ]; [ 64; 0 ]; [ 64; 64 ] ]);
  (* astronomically large spaces (10^64 >> max_int) must not overflow *)
  check_int "huge space" 10
    (List.length
       (Alignment.configs ~arrays:64
          ~candidates:[ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
          ~limit:10 ()))

let test_alignment_stride_configs () =
  let configs = Alignment.stride_configs ~arrays:3 ~step:1024 ~modulus:4096 in
  check_int "four configs" 4 (List.length configs);
  check_bool "first all zero" true (List.hd configs = [ 0; 0; 0 ]);
  check_bool "diagonal" true (List.nth configs 1 = [ 1024; 2048; 3072 ])

let test_alignment_sweep_and_extremes () =
  let v = variant_u 1 in
  let program = Variant.concrete_body v in
  let abi = Option.get v.Variant.abi in
  let configs = [ [ 0 ]; [ 64 ]; [ 1024 ] ] in
  match Alignment.sweep quick_opts program abi ~configs with
  | Error msg -> Alcotest.fail msg
  | Ok points ->
    check_int "three points" 3 (List.length points);
    let b = Alignment.best points and w = Alignment.worst points in
    check_bool "best <= worst" true
      (b.Alignment.report.Report.value <= w.Alignment.report.Report.value);
    check_bool "spread >= 0" true (Alignment.spread points >= 0.)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let sample_report () =
  Report.make ~id:"k" ~mode:"seq" ~unit_label:"tsc-cycles" ~per_label:"pass"
    [| 10.; 12.; 11. |]

let test_report_value_is_median () =
  Alcotest.(check (float 1e-9)) "median" 11. (sample_report ()).Report.value

let test_report_csv () =
  let csv = Report.csv [ sample_report () ] in
  let text = Mt_stats.Csv.to_string csv in
  check_bool "has id" true (String.length text > 0);
  check_int "one data row" 1 (Mt_stats.Csv.row_count csv)

let test_report_csv_full () =
  let csv = Report.csv ~full:true [ sample_report () ] in
  let header_line =
    match String.split_on_char '\n' (Mt_stats.Csv.to_string csv) with
    | h :: _ -> h
    | [] -> ""
  in
  check_bool "per-run columns" true
    (String.split_on_char ',' header_line |> List.exists (fun c -> c = "run0"))

let test_report_overhead_flag () =
  (* Default reports carry no flag and an empty flags cell... *)
  let plain = sample_report () in
  check_bool "default clear" false plain.Report.overhead_exceeded;
  Alcotest.(check string) "empty cell" "" (Report.flags_cell plain);
  (* ...while a flagged report surfaces it in the CSV. *)
  let flagged =
    Report.make ~id:"k" ~mode:"seq" ~unit_label:"tsc-cycles" ~per_label:"pass"
      ~overhead_exceeded:true [| 10.; 12.; 11. |]
  in
  Alcotest.(check string) "flag cell" "overhead-exceeds-measurement"
    (Report.flags_cell flagged);
  let text = Mt_stats.Csv.to_string (Report.csv [ flagged ]) in
  let header = List.hd (String.split_on_char '\n' text) in
  check_bool "flags column in header" true
    (String.split_on_char ',' header |> List.exists (fun c -> c = "flags"));
  check_bool "flag value in row" true
    (let needle = "overhead-exceeds-measurement" in
     let rec go i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || go (i + 1))
     in
     go 0)

let test_report_drop_first_edge_cases () =
  let opts =
    { quick_opts with Options.drop_first_experiment = true; experiments = 2 }
  in
  let v = variant_u 1 in
  match Protocol.prepare opts (Variant.concrete_body v) (Option.get v.Variant.abi) with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
    (* Two totals: the extra-warm first one is dropped, and a clamped
       first experiment must not set the overhead flag — it is gone
       before the flag is computed. *)
    let r = Protocol.report_of_totals p ~actual_passes:4 [ 0.; 1e9 ] in
    check_int "first dropped" 1 r.Report.summary.Mt_stats.count;
    check_bool "dropped warm-up does not flag the run" false
      r.Report.overhead_exceeded;
    (* A singleton keeps its only total instead of dying on List.tl. *)
    let r1 = Protocol.report_of_totals p ~actual_passes:4 [ 1e9 ] in
    check_int "singleton kept" 1 r1.Report.summary.Mt_stats.count;
    (* Empty input is a positioned error naming the kernel. *)
    (match Protocol.report_of_totals p ~actual_passes:4 [] with
    | _ -> Alcotest.fail "expected Invalid_argument on empty totals"
    | exception Invalid_argument msg ->
      check_bool "positioned" true
        (let needle = "report_of_totals" in
         let rec go i =
           i + String.length needle <= String.length msg
           && (String.sub msg i (String.length needle) = needle || go (i + 1))
         in
         go 0))

let test_csv_written_by_launch () =
  let path = Filename.temp_file "mtlaunch" ".csv" in
  let opts = { quick_opts with Options.csv_path = Some path } in
  (match Launcher.launch opts (Source.From_variant (variant_u 1)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let ic = open_in path in
  let first_line = input_line ic in
  close_in ic;
  Sys.remove path;
  check_bool "csv header written" true (String.length first_line > 0)

let tests =
  [
    Alcotest.test_case "more than thirty options" `Quick test_more_than_thirty_options;
    Alcotest.test_case "option validation" `Quick test_option_validation;
    Alcotest.test_case "effective machine" `Quick test_effective_machine;
    Alcotest.test_case "alignment_for cycles" `Quick test_alignment_for_cycles;
    Alcotest.test_case "noise env mapping" `Quick test_noise_env_mapping;
    Alcotest.test_case "source from variant" `Quick test_source_from_variant;
    Alcotest.test_case "source from assembly text" `Quick test_source_from_assembly_text;
    Alcotest.test_case "source from file" `Quick test_source_from_file;
    Alcotest.test_case "source missing abi header" `Quick test_source_missing_abi_header;
    Alcotest.test_case "abi round-trip through emission" `Quick test_source_abi_roundtrip_through_file;
    Alcotest.test_case "object container round-trip" `Quick test_object_container_roundtrip;
    Alcotest.test_case "object single function implicit" `Quick test_object_single_function_implicit;
    Alcotest.test_case "passes default to one traversal" `Quick test_protocol_passes_default_to_one_traversal;
    Alcotest.test_case "trip override" `Quick test_protocol_trip_override;
    Alcotest.test_case "run_once counts passes" `Quick test_protocol_run_once_counts;
    Alcotest.test_case "array alignment respected" `Quick test_protocol_array_alignment_respected;
    Alcotest.test_case "measure report shape" `Quick test_measure_report_shape;
    Alcotest.test_case "measurement reproducible" `Quick test_measure_reproducible;
    Alcotest.test_case "per-unit scaling" `Quick test_per_unit_scaling;
    Alcotest.test_case "eval method conversion" `Quick test_eval_method_conversion;
    Alcotest.test_case "overhead subtraction" `Quick test_overhead_subtraction_reduces_value;
    Alcotest.test_case "stability claim (Section 4.7)" `Quick test_stability_claim;
    Alcotest.test_case "launch dispatch seq" `Quick test_launch_dispatch_seq;
    Alcotest.test_case "fork mode" `Quick test_fork_mode;
    Alcotest.test_case "fork contention raises RAM cost" `Quick test_fork_contention_raises_ram_cost;
    Alcotest.test_case "fork non-local allocation" `Quick test_fork_nonlocal_allocation_saturates_earlier;
    Alcotest.test_case "openmp mode" `Quick test_openmp_mode;
    Alcotest.test_case "openmp beats sequential (big array)" `Quick test_openmp_beats_sequential_on_big_array;
    Alcotest.test_case "openmp overhead dominates tiny array" `Quick test_openmp_overhead_dominates_tiny_array;
    Alcotest.test_case "standalone mode" `Quick test_standalone_mode;
    Alcotest.test_case "standalone fork" `Quick test_standalone_fork;
    Alcotest.test_case "run_variants batch" `Quick test_run_variants_batch;
    Alcotest.test_case "best_variant" `Quick test_best_variant;
    Alcotest.test_case "alignment configs" `Quick test_alignment_configs;
    Alcotest.test_case "alignment configs bounded work" `Quick
      test_alignment_configs_bounded;
    Alcotest.test_case "alignment stride configs" `Quick test_alignment_stride_configs;
    Alcotest.test_case "alignment sweep extremes" `Quick test_alignment_sweep_and_extremes;
    Alcotest.test_case "report value is median" `Quick test_report_value_is_median;
    Alcotest.test_case "report csv" `Quick test_report_csv;
    Alcotest.test_case "report csv full" `Quick test_report_csv_full;
    Alcotest.test_case "report overhead flag" `Quick test_report_overhead_flag;
    Alcotest.test_case "report drop-first edge cases" `Quick
      test_report_drop_first_edge_cases;
    Alcotest.test_case "csv written by launch" `Quick test_csv_written_by_launch;
  ]
