(* Tests for the machine substrate: config, cache, TLB/memory pipeline,
   architectural execution, memmap and noise. *)

open Mt_machine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let checkf = Alcotest.(check (float 1e-6))

let x5650 = Config.nehalem_x5650_2s

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_presets_valid () =
  List.iter
    (fun (name, cfg) ->
      match Config.validate cfg with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg))
    Config.presets

let test_core_counts () =
  check_int "x5650" 12 (Config.core_count x5650);
  check_int "sandy" 4 (Config.core_count Config.sandy_bridge_e31240);
  check_int "x7550" 32 (Config.core_count Config.nehalem_x7550_4s)

let test_frequency_conversions () =
  checkf "cycles of ns" 26.7 (Config.cycles_of_ns x5650 10.);
  checkf "tsc ratio at nominal" 1. (Config.tsc_per_core_cycle x5650);
  let slow = Config.with_core_ghz x5650 1.335 in
  checkf "tsc ratio at half clock" 2. (Config.tsc_per_core_cycle slow)

let test_ram_share_monotone () =
  let share n = Config.ram_stream_bytes_per_cycle x5650 ~sharers:n in
  check_bool "1 core >= 6 cores" true (share 1 >= share 6);
  check_bool "6 cores > 12 cores" true (share 6 > share 12);
  (* The calibrated Fig. 14 knee: the fair share first drops below one
     core's own miss-parallelism limit right around 6 sharers. *)
  check_bool "no contention at 5" true (share 5 >= share 1 *. 0.999);
  check_bool "contention at 7" true (share 7 < share 1 *. 0.95)

let test_validate_catches () =
  let bad = { x5650 with Config.core_ghz = 0. } in
  check_bool "zero clock" true (Result.is_error (Config.validate bad));
  let bad = { x5650 with Config.l1 = { x5650.Config.l1 with Config.line_bytes = 48 } } in
  check_bool "non power-of-two line" true (Result.is_error (Config.validate bad));
  let bad = { x5650 with Config.load_ports = 0 } in
  check_bool "no load port" true (Result.is_error (Config.validate bad))

let test_find_preset () =
  check_bool "found" true (Config.find_preset "nehalem_x5650_2s" = Some x5650);
  check_bool "missing" true (Config.find_preset "pentium" = None)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let small_geom = { Config.size_bytes = 1024; associativity = 2; line_bytes = 64 }

let test_cache_miss_then_hit () =
  let c = Cache.create small_geom in
  check_bool "first is miss" false (Cache.access c 5);
  check_bool "second is hit" true (Cache.access c 5);
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  let c = Cache.create small_geom in
  (* 8 sets, 2 ways; lines 0, 8, 16 all map to set 0. *)
  check_int "same set" (Cache.set_of_line c 0) (Cache.set_of_line c 8);
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  ignore (Cache.access c 16);
  (* line 0 was LRU, must be gone; 8 and 16 remain *)
  check_bool "0 evicted" false (Cache.probe c 0);
  check_bool "8 stays" true (Cache.probe c 8);
  check_bool "16 stays" true (Cache.probe c 16)

let test_cache_lru_promotion () =
  let c = Cache.create small_geom in
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  ignore (Cache.access c 0);
  (* 0 was just used *)
  ignore (Cache.access c 16);
  (* now 8 is the LRU victim *)
  check_bool "0 stays (promoted)" true (Cache.probe c 0);
  check_bool "8 evicted" false (Cache.probe c 8)

let test_cache_probe_no_update () =
  let c = Cache.create small_geom in
  check_bool "probe miss" false (Cache.probe c 3);
  check_int "probe counts nothing" 0 (Cache.hits c + Cache.misses c);
  check_bool "still miss after probe" false (Cache.access c 3)

let test_cache_reset () =
  let c = Cache.create small_geom in
  ignore (Cache.access c 1);
  Cache.reset c;
  check_bool "gone" false (Cache.probe c 1);
  check_int "counters zeroed" 0 (Cache.misses c)

let test_cache_line_of_addr () =
  let c = Cache.create small_geom in
  check_int "line" 2 (Cache.line_of_addr c 128);
  check_int "line round down" 2 (Cache.line_of_addr c 191)

let test_cache_non_pow2_sets () =
  (* 12 MiB 16-way: 12288 sets — the X5650 L3 shape. *)
  let c = Cache.create { Config.size_bytes = 12 * 1024 * 1024; associativity = 16; line_bytes = 64 } in
  check_int "sets" 12288 (Cache.set_count c);
  ignore (Cache.access c 123456);
  check_bool "hit after fill" true (Cache.access c 123456)

let prop_cache_working_set_fits =
  (* Any working set no larger than one way per set, touched twice,
     hits on the second pass. *)
  QCheck.Test.make ~count:100 ~name:"cache: small working set always hits on re-touch"
    QCheck.(int_range 1 16)
    (fun n ->
      let c = Cache.create small_geom in
      let lines = List.init n (fun i -> i) in
      List.iter (fun l -> ignore (Cache.access c l)) lines;
      List.for_all (fun l -> Cache.probe c l) lines)

(* ------------------------------------------------------------------ *)
(* Memory pipeline                                                     *)
(* ------------------------------------------------------------------ *)

let test_memory_l1_hit_latency () =
  let m = Memory.create x5650 in
  let _ = Memory.access m ~now:0. ~addr:4096 ~bytes:8 ~write:false in
  let t = Memory.access m ~now:100. ~addr:4096 ~bytes:8 ~write:false in
  checkf "l1 hit" (100. +. float_of_int x5650.Config.l1_latency_cycles) t;
  check_bool "served by L1" true (Memory.level_of_last_access m = Memory.L1)

let test_memory_cold_miss_is_ram () =
  let m = Memory.create x5650 in
  let t = Memory.access m ~now:0. ~addr:65536 ~bytes:8 ~write:false in
  check_bool "cold goes to RAM" true (Memory.level_of_last_access m = Memory.Ram);
  check_bool "ram latency felt" true (t > Config.cycles_of_ns x5650 x5650.Config.ram_latency_ns *. 0.5)

let test_memory_split_access () =
  let m = Memory.create x5650 in
  (* Warm both lines. *)
  let _ = Memory.access m ~now:0. ~addr:4096 ~bytes:64 ~write:false in
  let _ = Memory.access m ~now:0. ~addr:4160 ~bytes:64 ~write:false in
  let aligned = Memory.access m ~now:1000. ~addr:4096 ~bytes:8 ~write:false in
  let split = Memory.access m ~now:1000. ~addr:4156 ~bytes:8 ~write:false in
  check_bool "split slower than aligned" true (split > aligned);
  check_int "split counted" 1 (Memory.counters m).Memory.split_accesses

let test_memory_stream_prefetch_hides_latency () =
  let m = Memory.create x5650 in
  (* Stream 64 sequential lines at a sustainable pace (a line every 30
     cycles is below the single-core DRAM fill rate); once the stream
     is established, per-access latency collapses to near the L1 time
     instead of the ~175-cycle RAM round trip. *)
  let last = ref 0. in
  for i = 0 to 63 do
    let now = float_of_int (i * 30) in
    last := Memory.access m ~now ~addr:(i * 64) ~bytes:8 ~write:false -. now
  done;
  let c = Memory.counters m in
  check_bool "prefetched fills happened" true (c.Memory.prefetched_fills > 32);
  check_bool "steady-state latency well under full RAM latency" true
    (!last < Config.cycles_of_ns x5650 x5650.Config.ram_latency_ns /. 2.)

let test_memory_large_stride_not_prefetched () =
  let m = Memory.create x5650 in
  (* Stride of 16 lines: beyond the streamer's reach. *)
  for i = 0 to 31 do
    ignore (Memory.access m ~now:(float_of_int (i * 4)) ~addr:(i * 1024) ~bytes:8 ~write:false)
  done;
  check_int "no prefetched fills" 0 (Memory.counters m).Memory.prefetched_fills

let test_memory_tlb_walks () =
  let m = Memory.create x5650 in
  (* Touch 600 distinct pages twice: more than both TLB levels hold,
     so the second pass still walks. *)
  for pass = 0 to 1 do
    ignore pass;
    for p = 0 to 599 do
      ignore (Memory.access m ~now:0. ~addr:(p * 4096) ~bytes:4 ~write:false)
    done
  done;
  let c = Memory.counters m in
  check_bool "tlb misses" true (c.Memory.tlb_misses > 600);
  check_bool "page walks" true (c.Memory.page_walks > 600)

let test_memory_tlb_capacity () =
  let m = Memory.create x5650 in
  (* 32 pages fit the first-level TLB: second pass has no new misses. *)
  for p = 0 to 31 do
    ignore (Memory.access m ~now:0. ~addr:(p * 4096) ~bytes:4 ~write:false)
  done;
  let first_pass = (Memory.counters m).Memory.tlb_misses in
  for p = 0 to 31 do
    ignore (Memory.access m ~now:0. ~addr:(p * 4096) ~bytes:4 ~write:false)
  done;
  check_int "no new tlb misses" first_pass (Memory.counters m).Memory.tlb_misses

let test_memory_ram_share_depends_on_sharers () =
  let alone = Memory.create ~ram_sharers:1 x5650 in
  let crowded = Memory.create ~ram_sharers:12 x5650 in
  check_bool "crowded share smaller" true
    (Memory.ram_share_bytes_per_cycle crowded < Memory.ram_share_bytes_per_cycle alone)

let test_memory_l3_partitioned_by_sharers () =
  (* A 1 MiB working set fits an exclusive L3 slice but not a 1/6th
     slice on the X5650 (12 MiB / 6 = 2 MiB — still fits; use 12
     sharers per socket by pretending 12 sharers on one socket). *)
  let single = Memory.create ~ram_sharers:1 x5650 in
  let shared = Memory.create ~ram_sharers:12 x5650 in
  let touch m bytes =
    let lines = bytes / 64 in
    for pass = 0 to 1 do
      ignore pass;
      for i = 0 to lines - 1 do
        ignore (Memory.access m ~now:0. ~addr:(i * 64) ~bytes:8 ~write:false)
      done
    done;
    (Memory.counters m).Memory.ram_accesses
  in
  let bytes = 4 * 1024 * 1024 in
  let ram_single = touch single bytes in
  let ram_shared = touch shared bytes in
  check_bool "sharing the L3 causes more RAM traffic" true (ram_shared > ram_single)

let test_memory_drain_keeps_cache () =
  let m = Memory.create x5650 in
  ignore (Memory.access m ~now:0. ~addr:8192 ~bytes:8 ~write:false);
  Memory.drain m;
  ignore (Memory.access m ~now:0. ~addr:8192 ~bytes:8 ~write:false);
  check_bool "still cached after drain" true (Memory.level_of_last_access m = Memory.L1)

let test_memory_reset_clears_cache () =
  let m = Memory.create x5650 in
  ignore (Memory.access m ~now:0. ~addr:8192 ~bytes:8 ~write:false);
  Memory.reset m;
  ignore (Memory.access m ~now:0. ~addr:8192 ~bytes:8 ~write:false);
  check_bool "cold after reset" true (Memory.level_of_last_access m = Memory.Ram)

(* ------------------------------------------------------------------ *)
(* Exec                                                                *)
(* ------------------------------------------------------------------ *)

open Mt_isa

let step_all e instrs = List.iter (Exec.step e) instrs

let rsi = Reg.gpr64 Reg.RSI

let rdi = Reg.gpr64 Reg.RDI

let test_exec_mov_add_sub () =
  let e = Exec.create () in
  step_all e
    [
      Insn.make Insn.MOV [ Operand.imm 100; Operand.reg rsi ];
      Insn.make Insn.ADD [ Operand.imm 48; Operand.reg rsi ];
      Insn.make Insn.SUB [ Operand.imm 8; Operand.reg rsi ];
    ];
  check_int "rsi" 140 (Exec.get e rsi)

let test_exec_reg_to_reg () =
  let e = Exec.create () in
  Exec.set e rdi 7;
  Exec.step e (Insn.make Insn.MOV [ Operand.reg rdi; Operand.reg rsi ]);
  check_int "copied" 7 (Exec.get e rsi)

let test_exec_lea () =
  let e = Exec.create () in
  Exec.set e rsi 1000;
  Exec.set e rdi 3;
  Exec.step e
    (Insn.make Insn.LEA
       [ Operand.mem ~base:rsi ~index:rdi ~scale:8 ~disp:16 (); Operand.reg (Reg.gpr64 Reg.RAX) ]);
  check_int "lea" (1000 + 24 + 16) (Exec.get e (Reg.gpr64 Reg.RAX))

let test_exec_inc_dec_neg () =
  let e = Exec.create () in
  Exec.set e rsi 5;
  Exec.step e (Insn.make Insn.INC [ Operand.reg rsi ]);
  check_int "inc" 6 (Exec.get e rsi);
  Exec.step e (Insn.make Insn.DEC [ Operand.reg rsi ]);
  check_int "dec" 5 (Exec.get e rsi);
  Exec.step e (Insn.make Insn.NEG [ Operand.reg rsi ]);
  check_int "neg" (-5) (Exec.get e rsi)

let test_exec_bitops () =
  let e = Exec.create () in
  Exec.set e rsi 0b1100;
  Exec.step e (Insn.make Insn.AND [ Operand.imm 0b1010; Operand.reg rsi ]);
  check_int "and" 0b1000 (Exec.get e rsi);
  Exec.step e (Insn.make Insn.OR [ Operand.imm 0b0011; Operand.reg rsi ]);
  check_int "or" 0b1011 (Exec.get e rsi);
  Exec.step e (Insn.make Insn.XOR [ Operand.reg rsi; Operand.reg rsi ]);
  check_int "xor zero" 0 (Exec.get e rsi);
  Exec.set e rsi 3;
  Exec.step e (Insn.make Insn.SHL [ Operand.imm 4; Operand.reg rsi ]);
  check_int "shl" 48 (Exec.get e rsi);
  Exec.step e (Insn.make Insn.SHR [ Operand.imm 2; Operand.reg rsi ]);
  check_int "shr" 12 (Exec.get e rsi)

let test_exec_flags_and_branches () =
  let e = Exec.create () in
  Exec.set e rdi 5;
  Exec.step e (Insn.make Insn.SUB [ Operand.imm 5; Operand.reg rdi ]);
  check_bool "jge after zero" true (Exec.branch_taken e Insn.GE);
  check_bool "je after zero" true (Exec.branch_taken e Insn.E);
  check_bool "jg after zero" false (Exec.branch_taken e Insn.G);
  Exec.step e (Insn.make Insn.SUB [ Operand.imm 3; Operand.reg rdi ]);
  check_bool "jl after negative" true (Exec.branch_taken e Insn.L);
  check_bool "jge after negative" false (Exec.branch_taken e Insn.GE)

let test_exec_cmp_direction () =
  (* AT&T: cmp src, dst sets flags from dst - src. *)
  let e = Exec.create () in
  Exec.set e rdi 10;
  Exec.step e (Insn.make Insn.CMP [ Operand.imm 3; Operand.reg rdi ]);
  check_bool "10 > 3" true (Exec.branch_taken e Insn.G);
  Exec.step e (Insn.make Insn.CMP [ Operand.imm 30; Operand.reg rdi ]);
  check_bool "10 < 30" true (Exec.branch_taken e Insn.L)

let test_exec_address_of () =
  let e = Exec.create () in
  Exec.set e rsi 4096;
  check_int "plain base" 4096 (Exec.address_of e { Operand.base = Some rsi; index = None; scale = 1; disp = 0 });
  check_int "disp" 4112 (Exec.address_of e { Operand.base = Some rsi; index = None; scale = 1; disp = 16 })

let test_exec_logical_rejected () =
  let e = Exec.create () in
  check_bool "logical get raises" true
    (try
       ignore (Exec.get e (Reg.logical "r1"));
       false
     with Invalid_argument _ -> true)

let test_exec_xmm_ignored () =
  let e = Exec.create () in
  Exec.set e (Reg.xmm 3) 42;
  check_int "xmm reads 0" 0 (Exec.get e (Reg.xmm 3))

(* ------------------------------------------------------------------ *)
(* Memmap                                                              *)
(* ------------------------------------------------------------------ *)

let test_memmap_alignment_and_offset () =
  let mm = Memmap.create () in
  let r = Memmap.alloc mm ~size:100 ~align:4096 ~offset:48 in
  check_int "offset" 48 (r.Memmap.base mod 4096)

let test_memmap_no_overlap () =
  let mm = Memmap.create () in
  let a = Memmap.alloc mm ~size:1000 ~align:64 ~offset:0 in
  let b = Memmap.alloc mm ~size:1000 ~align:64 ~offset:0 in
  check_bool "disjoint" true (b.Memmap.base >= a.Memmap.base + a.Memmap.size)

let test_memmap_guard_gap () =
  let mm = Memmap.create () in
  let a = Memmap.alloc mm ~size:10 ~align:64 ~offset:0 in
  let b = Memmap.alloc mm ~size:10 ~align:64 ~offset:0 in
  check_bool "page gap between arrays" true (b.Memmap.base - (a.Memmap.base + a.Memmap.size) >= 4096)

let test_memmap_bad_args () =
  let mm = Memmap.create () in
  check_bool "bad align" true
    (try ignore (Memmap.alloc mm ~size:8 ~align:3 ~offset:0); false
     with Invalid_argument _ -> true);
  check_bool "offset out of range" true
    (try ignore (Memmap.alloc mm ~size:8 ~align:64 ~offset:64); false
     with Invalid_argument _ -> true)

let test_memmap_reset () =
  let mm = Memmap.create () in
  let a = Memmap.alloc mm ~size:64 ~align:64 ~offset:0 in
  Memmap.reset mm;
  let b = Memmap.alloc mm ~size:64 ~align:64 ~offset:0 in
  check_int "same base after reset" a.Memmap.base b.Memmap.base

let prop_memmap_honours_alignment =
  QCheck.Test.make ~count:200 ~name:"memmap: base mod align = offset"
    QCheck.(triple (int_range 1 100000) (int_range 0 11) (int_range 0 4095))
    (fun (size, align_log, off) ->
      let align = 1 lsl align_log in
      let offset = off mod align in
      let mm = Memmap.create () in
      let r = Memmap.alloc mm ~size ~align ~offset in
      r.Memmap.base mod align = offset)

(* ------------------------------------------------------------------ *)
(* Noise                                                               *)
(* ------------------------------------------------------------------ *)

let test_noise_deterministic () =
  let a = Noise.create ~seed:7 Noise.stable_env in
  let b = Noise.create ~seed:7 Noise.stable_env in
  let sa = List.init 10 (fun _ -> Noise.perturb a 1000.) in
  let sb = List.init 10 (fun _ -> Noise.perturb b 1000.) in
  check_bool "same seed, same sequence" true (sa = sb)

let test_noise_seed_matters () =
  let a = Noise.create ~seed:1 Noise.stable_env in
  let b = Noise.create ~seed:2 Noise.stable_env in
  let sa = List.init 10 (fun _ -> Noise.perturb a 1000.) in
  let sb = List.init 10 (fun _ -> Noise.perturb b 1000.) in
  check_bool "different sequences" true (sa <> sb)

let test_noise_only_adds () =
  let n = Noise.create ~seed:3 Noise.hostile_env in
  for _ = 1 to 100 do
    check_bool "never speeds up" true (Noise.perturb n 500. >= 500.)
  done

let test_noise_stability_hierarchy () =
  check_bool "stable env is quietest" true
    (Noise.relative_amplitude Noise.stable_env < Noise.relative_amplitude Noise.hostile_env);
  let unpinned = { Noise.stable_env with Noise.pinned = false } in
  check_bool "unpinning adds noise" true
    (Noise.relative_amplitude Noise.stable_env < Noise.relative_amplitude unpinned)

let test_traceview_collects_and_renders () =
  let view = Traceview.create ~limit:4 () in
  Alcotest.(check string) "empty" "(no trace events collected)\n" (Traceview.render view);
  let compiled =
    match
      Core.compile
        [
          Mt_isa.Insn.Insn (Mt_isa.Insn.make Mt_isa.Insn.NOP []);
          Mt_isa.Insn.Insn (Mt_isa.Insn.make Mt_isa.Insn.NOP []);
          Mt_isa.Insn.Insn (Mt_isa.Insn.make Mt_isa.Insn.RET []);
        ]
    with
    | Ok c -> c
    | Error e -> Alcotest.fail (Core.error_to_string e)
  in
  let memory = Memory.create x5650 in
  (match Core.run ~trace:(Traceview.hook view) x5650 memory compiled with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Core.error_to_string e));
  check_int "three events" 3 (Traceview.events view);
  let text = Traceview.render ~width:20 view in
  check_bool "has bars" true (String.contains text '#');
  Traceview.reset view;
  check_int "reset" 0 (Traceview.events view)

let test_traceview_limit () =
  let view = Traceview.create ~limit:2 () in
  let insn = Mt_isa.Insn.make Mt_isa.Insn.NOP [] in
  for k = 0 to 9 do
    Traceview.hook view k insn ~issue:(float_of_int k) ~completion:(float_of_int (k + 1))
  done;
  check_int "capped" 2 (Traceview.events view);
  check_int "dropped counted" 8 (Traceview.dropped view);
  let text = Traceview.render view in
  check_bool "footer reports the drop" true
    (Telemetry_tests.contains text "(8 later events dropped at limit 2)");
  Traceview.reset view;
  check_int "reset clears dropped" 0 (Traceview.dropped view);
  (* A run under the limit renders without the footer. *)
  Traceview.hook view 0 insn ~issue:0. ~completion:1.;
  check_bool "no footer under the limit" false
    (Telemetry_tests.contains (Traceview.render view) "dropped")

let test_cache_access_hook () =
  let geom = { Config.size_bytes = 256; associativity = 2; line_bytes = 64 } in
  let cache = Cache.create geom in
  let log = ref [] in
  Cache.set_on_access cache (Some (fun ~hit -> log := hit :: !log));
  ignore (Cache.access cache 0);
  ignore (Cache.access cache 0);
  check_bool "miss then hit" true (List.rev !log = [ false; true ]);
  (* probe is a pure lookup: no event *)
  ignore (Cache.probe cache 0);
  check_int "probe fires nothing" 2 (List.length !log);
  Cache.set_on_access cache None;
  ignore (Cache.access cache 4096);
  check_int "cleared hook fires nothing" 2 (List.length !log)

let test_memory_access_hook () =
  let memory = Memory.create x5650 in
  let log = ref [] in
  Memory.set_access_hook memory
    (Some (fun level ~hit -> log := (level, hit) :: !log));
  (* Cold address: misses every level on the way to RAM. *)
  ignore (Memory.access memory ~now:0. ~addr:0 ~bytes:8 ~write:false);
  check_bool "cold load misses L1/L2/L3" true
    (List.rev !log
    = [ (Memory.L1, false); (Memory.L2, false); (Memory.L3, false) ]);
  log := [];
  ignore (Memory.access memory ~now:100. ~addr:0 ~bytes:8 ~write:false);
  check_bool "warm load hits L1" true (List.rev !log = [ (Memory.L1, true) ]);
  Memory.set_access_hook memory None;
  log := [];
  ignore (Memory.access memory ~now:200. ~addr:8192 ~bytes:8 ~write:false);
  check_bool "cleared hook is silent" true (!log = [])

let test_noise_amplitude_bound () =
  let n = Noise.create ~seed:5 Noise.stable_env in
  let amp = Noise.relative_amplitude Noise.stable_env in
  for _ = 1 to 200 do
    check_bool "within amplitude" true (Noise.perturb n 1000. <= 1000. *. (1. +. amp))
  done

let tests =
  [
    Alcotest.test_case "presets validate" `Quick test_presets_valid;
    Alcotest.test_case "core counts" `Quick test_core_counts;
    Alcotest.test_case "frequency conversions" `Quick test_frequency_conversions;
    Alcotest.test_case "ram share monotone, knee near 6" `Quick test_ram_share_monotone;
    Alcotest.test_case "validate catches bad configs" `Quick test_validate_catches;
    Alcotest.test_case "find preset" `Quick test_find_preset;
    Alcotest.test_case "cache miss then hit" `Quick test_cache_miss_then_hit;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache LRU promotion" `Quick test_cache_lru_promotion;
    Alcotest.test_case "cache probe is pure" `Quick test_cache_probe_no_update;
    Alcotest.test_case "cache reset" `Quick test_cache_reset;
    Alcotest.test_case "cache line_of_addr" `Quick test_cache_line_of_addr;
    Alcotest.test_case "cache with non-pow2 sets" `Quick test_cache_non_pow2_sets;
    QCheck_alcotest.to_alcotest prop_cache_working_set_fits;
    Alcotest.test_case "memory L1 hit latency" `Quick test_memory_l1_hit_latency;
    Alcotest.test_case "memory cold miss is RAM" `Quick test_memory_cold_miss_is_ram;
    Alcotest.test_case "memory split access" `Quick test_memory_split_access;
    Alcotest.test_case "memory stream prefetch" `Quick test_memory_stream_prefetch_hides_latency;
    Alcotest.test_case "memory large stride not prefetched" `Quick test_memory_large_stride_not_prefetched;
    Alcotest.test_case "memory TLB walks" `Quick test_memory_tlb_walks;
    Alcotest.test_case "memory TLB capacity" `Quick test_memory_tlb_capacity;
    Alcotest.test_case "memory ram share vs sharers" `Quick test_memory_ram_share_depends_on_sharers;
    Alcotest.test_case "memory L3 partitioned by sharers" `Quick test_memory_l3_partitioned_by_sharers;
    Alcotest.test_case "memory drain keeps cache" `Quick test_memory_drain_keeps_cache;
    Alcotest.test_case "memory reset clears cache" `Quick test_memory_reset_clears_cache;
    Alcotest.test_case "exec mov/add/sub" `Quick test_exec_mov_add_sub;
    Alcotest.test_case "exec reg-to-reg move" `Quick test_exec_reg_to_reg;
    Alcotest.test_case "exec lea" `Quick test_exec_lea;
    Alcotest.test_case "exec inc/dec/neg" `Quick test_exec_inc_dec_neg;
    Alcotest.test_case "exec bitops" `Quick test_exec_bitops;
    Alcotest.test_case "exec flags and branches" `Quick test_exec_flags_and_branches;
    Alcotest.test_case "exec cmp direction" `Quick test_exec_cmp_direction;
    Alcotest.test_case "exec address_of" `Quick test_exec_address_of;
    Alcotest.test_case "exec rejects logical registers" `Quick test_exec_logical_rejected;
    Alcotest.test_case "exec ignores xmm values" `Quick test_exec_xmm_ignored;
    Alcotest.test_case "memmap alignment and offset" `Quick test_memmap_alignment_and_offset;
    Alcotest.test_case "memmap no overlap" `Quick test_memmap_no_overlap;
    Alcotest.test_case "memmap guard gap" `Quick test_memmap_guard_gap;
    Alcotest.test_case "memmap bad arguments" `Quick test_memmap_bad_args;
    Alcotest.test_case "memmap reset" `Quick test_memmap_reset;
    QCheck_alcotest.to_alcotest prop_memmap_honours_alignment;
    Alcotest.test_case "noise deterministic" `Quick test_noise_deterministic;
    Alcotest.test_case "noise seed matters" `Quick test_noise_seed_matters;
    Alcotest.test_case "noise only adds time" `Quick test_noise_only_adds;
    Alcotest.test_case "noise stability hierarchy" `Quick test_noise_stability_hierarchy;
    Alcotest.test_case "noise amplitude bound" `Quick test_noise_amplitude_bound;
    Alcotest.test_case "traceview collects and renders" `Quick test_traceview_collects_and_renders;
    Alcotest.test_case "traceview limit" `Quick test_traceview_limit;
    Alcotest.test_case "cache access hook" `Quick test_cache_access_hook;
    Alcotest.test_case "memory access hook" `Quick test_memory_access_hook;
  ]
