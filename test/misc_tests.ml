(* Cross-cutting behaviours not covered by the per-library suites:
   protocol corner options, report output shapes, custom pipelines. *)

open Mt_machine
open Mt_creator
open Mt_launcher

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let x5650 = Config.nehalem_x5650_2s

let variant =
  lazy
    (match
       Creator.generate (Mt_kernels.Streams.movss_unrolled_spec ~unroll:2 ())
     with
    | [ v ] -> v
    | _ -> Alcotest.fail "variant")

let measure opts =
  match Launcher.launch opts (Source.From_variant (Lazy.force variant)) with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

let base_opts =
  {
    (Options.default x5650) with
    Options.array_bytes = 16 * 1024;
    repetitions = 1;
    experiments = 4;
  }

let test_drop_first_experiment () =
  let kept = measure { base_opts with Options.drop_first_experiment = true } in
  check_int "one experiment dropped" 3 (Array.length kept.Report.experiments)

let test_drop_first_removes_cold_outlier () =
  (* Without warm-up the first experiment carries the cold misses;
     dropping it tightens the spread. *)
  let opts = { base_opts with Options.warmup = false; experiments = 6 } in
  let noisy = measure opts in
  let trimmed = measure { opts with Options.drop_first_experiment = true } in
  check_bool "cold first run dominates the spread" true
    (Mt_stats.relative_spread trimmed.Report.experiments
    < Mt_stats.relative_spread noisy.Report.experiments /. 2.)

let test_per_call_unit () =
  let r = measure { base_opts with Options.per = Options.Per_call } in
  Alcotest.(check string) "label" "call" r.Report.per_label;
  (* A whole 16 KiB traversal costs thousands of cycles per call. *)
  check_bool "magnitude" true (r.Report.value > 1000.)

let test_wallclock_unit () =
  let tsc = measure base_opts in
  let ns = measure { base_opts with Options.eval_method = Options.Wallclock_ns } in
  Alcotest.(check string) "label" "ns" ns.Report.unit_label;
  (* At nominal clock, 1 tsc-cycle = 1/2.67 ns. *)
  Alcotest.(check (float 0.01)) "conversion" (tsc.Report.value /. 2.67) ns.Report.value

let test_report_csv_uneven_lengths () =
  let a =
    Report.make ~id:"a" ~mode:"seq" ~unit_label:"tsc-cycles" ~per_label:"pass"
      [| 1.; 2. |]
  in
  let b =
    Report.make ~id:"b" ~mode:"seq" ~unit_label:"tsc-cycles" ~per_label:"pass"
      [| 3.; 4.; 5. |]
  in
  let csv = Report.csv ~full:true [ a; b ] in
  (* Renders without width errors; 2 data rows. *)
  check_int "rows" 2 (Mt_stats.Csv.row_count csv);
  check_bool "renders" true (String.length (Mt_stats.Csv.to_string csv) > 0)

let test_custom_pipeline_in_study () =
  (* A pipeline with the swap pass gated off: one variant per unroll. *)
  let pipeline =
    Pass.set_gate (Passes.default_pipeline ()) "operand-swap-post" (fun _ _ -> false)
  in
  let study =
    Microtools.Study.create ~pipeline
      (Mt_kernels.Streams.loadstore_spec ~unroll:(1, 4) ())
      base_opts
  in
  check_int "four variants" 4 (List.length (Microtools.Study.variants study))

let test_energy_zero_pass_guard () =
  let memory = Memory.create x5650 in
  let program = [ Mt_isa.Insn.Insn (Mt_isa.Insn.make Mt_isa.Insn.RET []) ] in
  match Core.run_program x5650 memory program with
  | Ok o ->
    check_bool "finite energy with rax = 0" true
      (Float.is_finite (Energy.energy_per_iteration_nj x5650 o))
  | Error e -> Alcotest.fail (Core.error_to_string e)

let test_find_knee_unsorted_input () =
  let series = [ (600., 25.); (100., 5.); (500., 5.2); (300., 5.1) ] in
  match Microtools.Analysis.find_knee series with
  | Some k -> Alcotest.(check (float 1e-9)) "sorted internally" 500. k.Microtools.Analysis.at
  | None -> Alcotest.fail "knee expected"

let test_ram_sharers_override () =
  (* Forcing the DRAM share of a 12-way contended machine slows a cold
     stream even in sequential mode. *)
  let opts =
    {
      base_opts with
      Options.array_bytes = 1024 * 1024;
      warmup = false;
      experiments = 1;
    }
  in
  let alone = measure opts in
  let crowded = measure { opts with Options.ram_sharers = Some 12 } in
  check_bool "override applied" true
    (crowded.Report.value > alone.Report.value *. 1.3)

let test_subtract_overhead_floor () =
  (* Overhead subtraction never produces negative values, even for a
     nearly-empty kernel. *)
  let opts = { base_opts with Options.trip_passes = Some 1 } in
  let r = measure opts in
  check_bool "non-negative" true (r.Report.value >= 0.)

let tests =
  [
    Alcotest.test_case "drop first experiment" `Quick test_drop_first_experiment;
    Alcotest.test_case "drop first removes cold outlier" `Quick test_drop_first_removes_cold_outlier;
    Alcotest.test_case "per-call unit" `Quick test_per_call_unit;
    Alcotest.test_case "wall-clock unit conversion" `Quick test_wallclock_unit;
    Alcotest.test_case "report csv uneven lengths" `Quick test_report_csv_uneven_lengths;
    Alcotest.test_case "custom pipeline in study" `Quick test_custom_pipeline_in_study;
    Alcotest.test_case "energy zero-pass guard" `Quick test_energy_zero_pass_guard;
    Alcotest.test_case "find_knee unsorted input" `Quick test_find_knee_unsorted_input;
    Alcotest.test_case "ram_sharers override" `Quick test_ram_sharers_override;
    Alcotest.test_case "overhead subtraction floor" `Quick test_subtract_overhead_floor;
  ]
