(* Tests for the MPI runtime model and the launcher's SPMD mode. *)

open Mt_machine
open Mt_creator
open Mt_launcher

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let checkf = Alcotest.(check (float 1e-6))

let x5650 = Config.nehalem_x5650_2s

let comm ranks = Mt_mpi.create x5650 ~ranks

let test_create_validates () =
  check_bool "zero ranks" true
    (try ignore (Mt_mpi.create x5650 ~ranks:0); false
     with Invalid_argument _ -> true);
  check_bool "too many ranks" true
    (try ignore (Mt_mpi.create x5650 ~ranks:13); false
     with Invalid_argument _ -> true)

let test_send_cost_alpha_beta () =
  let c = Mt_mpi.create ~alpha_ns:100. ~beta_ns_per_byte:1. x5650 ~ranks:2 in
  (* 100 ns + 50 bytes * 1 ns = 150 ns at 2.67 GHz. *)
  checkf "alpha-beta" (150. *. 2.67) (Mt_mpi.send_cost c ~bytes:50)

let test_barrier_logarithmic () =
  let b n = Mt_mpi.barrier_cost (comm n) in
  checkf "single rank is free" 0. (b 1);
  check_bool "2 ranks: one round" true (b 2 > 0.);
  checkf "4 ranks = 2 rounds" (2. *. b 2) (b 4);
  checkf "8 ranks = 3 rounds" (3. *. b 2) (b 8);
  (* Non-power-of-two rounds up. *)
  checkf "5 ranks = 3 rounds" (b 8) (b 5)

let test_collective_relations () =
  let c = comm 8 in
  checkf "allreduce = reduce + bcast"
    (Mt_mpi.reduce_cost c ~bytes:1024 +. Mt_mpi.bcast_cost c ~bytes:1024)
    (Mt_mpi.allreduce_cost c ~bytes:1024);
  check_bool "alltoall grows with ranks" true
    (Mt_mpi.alltoall_cost (comm 8) ~bytes:64 > Mt_mpi.alltoall_cost (comm 4) ~bytes:64)

let test_run_spmd_bulk_synchronous () =
  let c = comm 4 in
  (* Rank 2 is twice as slow; each phase waits for it. *)
  let compute ~rank ~phase:_ ~sharers:_ = if rank = 2 then 2000. else 1000. in
  let t =
    Mt_mpi.run_spmd c ~phases:3 ~compute ~communication:(fun ~phase:_ -> Mt_mpi.No_comm)
  in
  checkf "3 phases x slowest rank" 6000. t

let test_run_spmd_adds_communication () =
  let c = comm 4 in
  let compute ~rank:_ ~phase:_ ~sharers:_ = 1000. in
  let plain =
    Mt_mpi.run_spmd c ~phases:2 ~compute ~communication:(fun ~phase:_ -> Mt_mpi.No_comm)
  in
  let with_halo =
    Mt_mpi.run_spmd c ~phases:2 ~compute
      ~communication:(fun ~phase:_ -> Mt_mpi.Halo_exchange 4096)
  in
  checkf "halo cost per phase" (2. *. Mt_mpi.phase_comm_cost c (Mt_mpi.Halo_exchange 4096))
    (with_halo -. plain)

let test_efficiency_bounds () =
  let c = comm 4 in
  (* Make the phases long enough that the barrier (~3.2k cycles) is
     marginal. *)
  let compute ~rank:_ ~phase:_ ~sharers:_ = 200_000. in
  let e =
    Mt_mpi.efficiency c ~phases:2 ~compute
      ~communication:(fun ~phase:_ -> Mt_mpi.Barrier)
  in
  check_bool "0 < efficiency <= 1" true (e > 0. && e <= 1.);
  (* Perfectly balanced compute, tiny barrier: high efficiency. *)
  check_bool "near 1 for balanced work" true (e > 0.9)

let test_efficiency_penalises_imbalance () =
  let c = comm 4 in
  let balanced ~rank:_ ~phase:_ ~sharers:_ = 10000. in
  let skewed ~rank ~phase:_ ~sharers:_ = if rank = 0 then 40000. else 10000. in
  let e_b =
    Mt_mpi.efficiency c ~phases:1 ~compute:balanced
      ~communication:(fun ~phase:_ -> Mt_mpi.No_comm)
  in
  let e_s =
    Mt_mpi.efficiency c ~phases:1 ~compute:skewed
      ~communication:(fun ~phase:_ -> Mt_mpi.No_comm)
  in
  check_bool "imbalance hurts" true (e_s < e_b *. 0.6)

(* ------------------------------------------------------------------ *)
(* Launcher MPI mode                                                   *)
(* ------------------------------------------------------------------ *)

let variant =
  lazy
    (match
       Mt_creator.Creator.generate
         (Mt_kernels.Streams.movss_unrolled_spec ~unroll:4 ())
     with
    | [ v ] -> v
    | _ -> Alcotest.fail "variant")

let mpi_opts ranks =
  {
    (Options.default x5650) with
    Options.array_bytes = 64 * 1024;
    repetitions = 2;
    experiments = 2;
    mpi_ranks = ranks;
  }

let test_launch_dispatches_mpi () =
  match
    Launcher.launch (mpi_opts 4) (Source.From_variant (Lazy.force variant))
  with
  | Ok r ->
    Alcotest.(check string) "mode" "mpi:4" r.Report.mode;
    check_bool "positive" true (r.Report.value > 0.)
  | Error msg -> Alcotest.fail msg

let test_mpi_scales_cached_work () =
  (* Cache-resident work decomposes: per-pass cost drops with ranks. *)
  let value ranks =
    match Launcher.launch (mpi_opts ranks) (Source.From_variant (Lazy.force variant)) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  check_bool "4 ranks beat 1" true (value 4 < value 1 /. 2.)

let test_mpi_halo_costs_show () =
  let base = mpi_opts 4 in
  let value opts =
    match Launcher.launch opts (Source.From_variant (Lazy.force variant)) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  let without = value base in
  let with_halo = value { base with Options.mpi_halo_bytes = Some (1 lsl 20) } in
  check_bool "big halos cost" true (with_halo > without *. 1.05)

let test_mpi_option_validated () =
  check_bool "too many ranks rejected" true
    (Result.is_error (Options.validate { (mpi_opts 4) with Options.mpi_ranks = 99 }))

let test_job_cycles_positive () =
  let v = Lazy.force variant in
  match
    Mpi_mode.job_cycles (mpi_opts 4) (Variant.concrete_body v)
      (Option.get v.Variant.abi)
  with
  | Ok c -> check_bool "positive" true (c > 0.)
  | Error msg -> Alcotest.fail msg

let test_options_count () = check_int "the option surface keeps growing" 40 Options.count

let tests =
  [
    Alcotest.test_case "create validates" `Quick test_create_validates;
    Alcotest.test_case "send cost alpha-beta" `Quick test_send_cost_alpha_beta;
    Alcotest.test_case "barrier logarithmic" `Quick test_barrier_logarithmic;
    Alcotest.test_case "collective relations" `Quick test_collective_relations;
    Alcotest.test_case "run_spmd bulk-synchronous" `Quick test_run_spmd_bulk_synchronous;
    Alcotest.test_case "run_spmd adds communication" `Quick test_run_spmd_adds_communication;
    Alcotest.test_case "efficiency bounds" `Quick test_efficiency_bounds;
    Alcotest.test_case "efficiency penalises imbalance" `Quick test_efficiency_penalises_imbalance;
    Alcotest.test_case "launch dispatches mpi" `Quick test_launch_dispatches_mpi;
    Alcotest.test_case "mpi scales cached work" `Quick test_mpi_scales_cached_work;
    Alcotest.test_case "mpi halo costs show" `Quick test_mpi_halo_costs_show;
    Alcotest.test_case "mpi option validated" `Quick test_mpi_option_validated;
    Alcotest.test_case "job cycles positive" `Quick test_job_cycles_positive;
    Alcotest.test_case "options count" `Quick test_options_count;
  ]
