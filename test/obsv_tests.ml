(* Tests for mt_obsv: the JSON codec, snapshot round-trips, the
   CoV-gated diff, and the deep trace lanes the launcher records at
   --trace-detail sampled/full. *)

open Mt_machine
open Mt_launcher
open Mt_obsv

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "quote\" back\\slash\nnewline");
        ("n", Json.Num 0.503);
        ("i", Json.Num 510.);
        ("neg", Json.Num (-1.5e-9));
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Num 1.; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  (match Json.of_string (Json.to_string doc) with
  | Ok parsed -> check_bool "compact round-trips" true (parsed = doc)
  | Error msg -> Alcotest.fail msg);
  match Json.of_string (Json.to_string ~indent:true doc) with
  | Ok parsed -> check_bool "indented round-trips" true (parsed = doc)
  | Error msg -> Alcotest.fail msg

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
    | Error _ -> ()
  in
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "1 2";
  bad "nul"

let test_json_unicode_escape () =
  match Json.of_string "\"caf\\u00e9 \\u2192\"" with
  | Ok (Json.Str s) -> check_str "utf8 decoded" "caf\xc3\xa9 \xe2\x86\x92" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let sample_snapshot () =
  Snapshot.make ~tool:"test" ~created_at:123.5
    ~kernel:("loadstore", "kh") ~machine:("x5650", "mh")
    ~options:[ ("experiments", "5"); ("per", "element") ]
    ~seed:42
    ~counters:[ ("sim.variants", 14) ]
    [
      Snapshot.of_values ~key:"v1" ~unroll:1 ~unit_label:"tsc-cycles"
        ~per_label:"element"
        [| 2.0; 2.1; 1.9; 2.0 |];
      Snapshot.point_stat ~key:"v2" 0.503;
    ]

let test_snapshot_round_trip () =
  let snap = sample_snapshot () in
  let path = Filename.temp_file "mt_obsv" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save snap path;
      match Snapshot.load path with
      | Error msg -> Alcotest.fail msg
      | Ok loaded ->
        check_bool "identical after save/load" true (loaded = snap))

(* Forward compatibility: a document written by a newer schema — a
   bumped version number plus fields this binary has never heard of, at
   the top level and inside each variant — must load with the unknown
   fields ignored, so older binaries can read newer history entries. *)
let test_snapshot_loads_newer_schema () =
  let text =
    Printf.sprintf
      "{\"schema\": %d, \"tool\": \"future\", \"novel_top_level\": {\"x\": 1},\n\
      \ \"variants\": [{\"key\": \"v0\", \"median\": 2.5,\n\
      \                 \"novel_variant_field\": [1, 2, 3]}],\n\
      \ \"another_unknown\": \"ignored\"}"
      (Snapshot.schema_version + 1)
  in
  match Snapshot.of_string text with
  | Error msg -> Alcotest.failf "newer schema failed to load: %s" msg
  | Ok snap ->
    check_int "document schema preserved" (Snapshot.schema_version + 1)
      snap.Snapshot.schema;
    check_str "tool" "future" snap.Snapshot.tool;
    (match snap.Snapshot.variants with
    | [ v ] ->
      check_str "variant key" "v0" v.Snapshot.key;
      Alcotest.(check (float 1e-9)) "variant median" 2.5 v.Snapshot.median
    | vs -> Alcotest.failf "expected 1 variant, got %d" (List.length vs))

let test_identical_snapshots_diff_empty () =
  let snap = sample_snapshot () in
  let diff = Diff.compare ~baseline:snap snap in
  check_bool "no regressions" false (Diff.has_regressions diff);
  check_int "all matched" 2 (List.length diff.Diff.entries);
  List.iter
    (fun e -> check_bool e.Diff.key true (e.Diff.verdict = Diff.Unchanged))
    diff.Diff.entries;
  check_bool "no provenance notes" true (diff.Diff.provenance_notes = [])

(* ------------------------------------------------------------------ *)
(* The noise gate                                                      *)
(* ------------------------------------------------------------------ *)

(* Two runs of the same noisy measurement: median 100 with stddev 5
   over 10 experiments pools to a ~5% CoV, so the 3x gate spans ~15%. *)
let noisy ?(verdict = Mt_quality.Stable) key median =
  {
    Snapshot.key;
    unroll = 1;
    median;
    mean = median;
    stddev = 5.;
    cov = 5. /. median;
    count = 10;
    minimum = median -. 8.;
    maximum = median +. 8.;
    unit_label = "tsc-cycles";
    per_label = "pass";
    rciw = 0.;
    outliers = 0;
    warmup_trend = false;
    verdict;
    profile = [];
  }

let snap_of variants =
  Snapshot.make ~tool:"test" ~created_at:0. ~kernel:("k", "kh")
    ~machine:("m", "mh") variants

let verdict_of diff key =
  match List.find_opt (fun e -> e.Diff.key = key) diff.Diff.entries with
  | Some e -> e.Diff.verdict
  | None -> Alcotest.fail (key ^ " not in diff")

let test_delta_inside_band_is_unchanged () =
  let base = snap_of [ noisy "v" 100. ] in
  let cur = snap_of [ noisy "v" 102. ] in
  let diff = Diff.compare ~baseline:base cur in
  check_bool "2% inside a 15% band" true (verdict_of diff "v" = Diff.Unchanged);
  check_bool "exit would be 0" false (Diff.has_regressions diff)

let test_delta_outside_band_is_flagged () =
  let base = snap_of [ noisy "v" 100. ] in
  let slower = Diff.compare ~baseline:base (snap_of [ noisy "v" 140. ]) in
  check_bool "+40% escapes the band" true
    (verdict_of slower "v" = Diff.Regression);
  check_bool "exit would be 1" true (Diff.has_regressions slower);
  let faster = Diff.compare ~baseline:base (snap_of [ noisy "v" 60. ]) in
  check_bool "-40% is an improvement" true
    (verdict_of faster "v" = Diff.Improvement);
  check_bool "improvements do not gate" false (Diff.has_regressions faster)

let test_threshold_scales_the_band () =
  let base = snap_of [ noisy "v" 100. ] in
  let cur = snap_of [ noisy "v" 120. ] in
  let tight = Diff.compare ~threshold:1.0 ~baseline:base cur in
  check_bool "20% escapes a 1x (~5%) band" true
    (verdict_of tight "v" = Diff.Regression);
  let loose = Diff.compare ~threshold:10.0 ~baseline:base cur in
  check_bool "20% hides in a 10x (~50%) band" true
    (verdict_of loose "v" = Diff.Unchanged)

let test_min_band_floors_zero_variance () =
  (* The deterministic simulator: stddev 0 on both sides would make the
     pooled band 0 and every last-digit wobble a regression. *)
  let base = snap_of [ Snapshot.point_stat ~key:"v" 100. ] in
  let wobble = Diff.compare ~baseline:base (snap_of [ Snapshot.point_stat ~key:"v" 100.05 ]) in
  check_bool "0.05% sits under the 0.1% floor" true
    (verdict_of wobble "v" = Diff.Unchanged);
  let real = Diff.compare ~baseline:base (snap_of [ Snapshot.point_stat ~key:"v" 101. ]) in
  check_bool "1% escapes the floor" true (verdict_of real "v" = Diff.Regression)

let test_added_and_removed () =
  let base = snap_of [ noisy "old" 100.; noisy "both" 100. ] in
  let cur = snap_of [ noisy "both" 100.; noisy "new" 100. ] in
  let diff = Diff.compare ~baseline:base cur in
  check_bool "removed" true (verdict_of diff "old" = Diff.Removed);
  check_bool "added" true (verdict_of diff "new" = Diff.Added);
  check_bool "matched" true (verdict_of diff "both" = Diff.Unchanged);
  check_bool "membership changes do not gate" false (Diff.has_regressions diff)

let test_hash_mismatch_noted () =
  let base = snap_of [ noisy "v" 100. ] in
  let cur =
    Snapshot.make ~tool:"test" ~created_at:0. ~kernel:("k", "other-hash")
      ~machine:("m", "mh") [ noisy "v" 100. ]
  in
  let diff = Diff.compare ~baseline:base cur in
  check_int "one note" 1 (List.length diff.Diff.provenance_notes)

let test_diff_render_and_json () =
  let base = snap_of [ noisy "v" 100. ] in
  let diff = Diff.compare ~baseline:base (snap_of [ noisy "v" 140. ]) in
  let table = Diff.render diff in
  check_bool "verdict in table" true
    (Telemetry_tests.contains table "regression");
  check_bool "summary line" true (Telemetry_tests.contains table "1 regression");
  let json = Json.to_string (Diff.to_json diff) in
  Telemetry_tests.validate_json json;
  check_bool "regressions flag" true
    (Telemetry_tests.contains json "\"regressions\":true")

(* ------------------------------------------------------------------ *)
(* The quality gate                                                    *)
(* ------------------------------------------------------------------ *)

let test_quality_regression_gates_independently () =
  (* Same medians — the perf gate stays quiet — but the current run's
     series went unstable: the quality gate must fire on its own, with
     its own note. *)
  let base = snap_of [ noisy "v" 100. ] in
  let cur =
    snap_of [ noisy ~verdict:(Mt_quality.Unstable "cov 30% >= 10%") "v" 100. ]
  in
  let diff = Diff.compare ~baseline:base cur in
  check_bool "medians held" false (Diff.has_regressions diff);
  check_bool "quality regressed" true (Diff.has_quality_regressions diff);
  let table = Diff.render diff in
  check_bool "distinct note" true
    (Telemetry_tests.contains table "measurement quality regressed for v");
  check_bool "summary counts it" true
    (Telemetry_tests.contains table "1 quality regression");
  let json = Json.to_string (Diff.to_json diff) in
  Telemetry_tests.validate_json json;
  check_bool "json quality flag" true
    (Telemetry_tests.contains json "\"quality_regressions\":true");
  (* The reverse direction is an improvement, not a regression. *)
  let healed = Diff.compare ~baseline:cur base in
  check_bool "recovery does not gate" false (Diff.has_quality_regressions healed)

let test_quality_noisy_step_is_a_regression () =
  (* Stable -> Noisy is already a rank increase: the gate is on verdict
     rank, not just the unstable extreme. *)
  let base = snap_of [ noisy "v" 100. ] in
  let cur = snap_of [ noisy ~verdict:(Mt_quality.Noisy "rciw") "v" 100. ] in
  check_bool "stable->noisy gates" true
    (Diff.has_quality_regressions (Diff.compare ~baseline:base cur));
  let worse =
    snap_of [ noisy ~verdict:(Mt_quality.Unstable "cov") "v" 100. ]
  in
  check_bool "noisy->unstable gates" true
    (Diff.has_quality_regressions (Diff.compare ~baseline:cur worse));
  check_bool "same rank does not gate" false
    (Diff.has_quality_regressions (Diff.compare ~baseline:cur cur))

let test_schema1_snapshot_loads_with_quality_defaults () =
  (* A pre-quality (schema 1) snapshot has no verdict fields: it must
     load as Stable/zeroed, so old baselines never read as regressed. *)
  let text =
    "{\"schema\": 1, \"variants\": [{\"key\": \"v\", \"median\": 2.5}]}"
  in
  match Snapshot.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok snap -> (
    match snap.Snapshot.variants with
    | [ v ] ->
      check_bool "stable by default" true (v.Snapshot.verdict = Mt_quality.Stable);
      check_bool "zeroed quality metrics" true
        (v.Snapshot.rciw = 0. && v.Snapshot.outliers = 0
        && not v.Snapshot.warmup_trend)
    | _ -> Alcotest.fail "expected one variant")

let test_snapshot_verdict_round_trips () =
  let stats =
    [
      noisy "s" 100.;
      noisy ~verdict:(Mt_quality.Noisy "outliers 3/10 > 20%") "n" 100.;
      noisy ~verdict:(Mt_quality.Unstable "rciw 40.0% >= 25.0%") "u" 100.;
    ]
  in
  let snap = snap_of stats in
  match Snapshot.of_string (Snapshot.to_string snap) with
  | Error msg -> Alcotest.fail msg
  | Ok loaded ->
    check_bool "verdicts (and reasons) survive the codec" true
      (List.map (fun v -> v.Snapshot.verdict) loaded.Snapshot.variants
      = List.map (fun v -> v.Snapshot.verdict) stats)

(* ------------------------------------------------------------------ *)
(* Study.snapshot end-to-end                                           *)
(* ------------------------------------------------------------------ *)

let x5650 = Config.nehalem_x5650_2s

let quick_opts =
  {
    (Options.default x5650) with
    Options.array_bytes = 16 * 1024;
    repetitions = 1;
    experiments = 2;
  }

let small_spec =
  Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
    ~unroll:(1, 2) ()

let test_study_snapshot_round_trip () =
  let study = Microtools.Study.create small_spec quick_opts in
  let outcomes = Microtools.Study.run study in
  let snap = Microtools.Study.snapshot study outcomes in
  check_int "one stat per variant" 6 (List.length snap.Snapshot.variants);
  check_int "variant_count counts outcomes" 6 snap.Snapshot.variant_count;
  check_str "kernel name from spec" "loadstore" snap.Snapshot.kernel_name;
  check_bool "options recorded" true
    (List.assoc_opt "experiments" snap.Snapshot.options = Some "2");
  (* A second identical run diffs empty — the simulator is deterministic
     and the manifest captures everything the measurement depends on. *)
  let snap' = Microtools.Study.snapshot study (Microtools.Study.run study) in
  let diff = Diff.compare ~baseline:snap snap' in
  check_bool "identical re-run has no regressions" false
    (Diff.has_regressions diff);
  List.iter
    (fun e -> check_bool e.Diff.key true (e.Diff.verdict = Diff.Unchanged))
    diff.Diff.entries;
  (* And the file round-trip preserves it bit-for-bit. *)
  let path = Filename.temp_file "mt_study" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save snap path;
      match Snapshot.load path with
      | Error msg -> Alcotest.fail msg
      | Ok loaded -> check_bool "file round-trip" true (loaded = snap))

let test_exp_table_stat_entries () =
  let table =
    Microtools.Exp_table.make ~id:"figXX" ~title:"t"
      ~columns:[ "size"; "cycles"; "note" ]
      ~expectation:"e"
      [ [ "100"; "2.5"; "fast" ]; [ "200"; "7.25"; "slow" ] ]
  in
  let entries = Microtools.Exp_table.stat_entries table in
  (* The label column itself and non-numeric cells are skipped. *)
  check_bool "numeric cells only" true
    (entries
    = [ ("figXX/100/cycles", 2.5); ("figXX/200/cycles", 7.25) ])

(* ------------------------------------------------------------------ *)
(* Deep trace lanes                                                    *)
(* ------------------------------------------------------------------ *)

let with_lanes detail f =
  let tel = Mt_telemetry.create () in
  Mt_telemetry.set_global tel;
  Mt_telemetry.set_detail detail;
  Fun.protect
    ~finally:(fun () ->
      Mt_telemetry.set_detail Mt_telemetry.Off;
      Mt_telemetry.set_global Mt_telemetry.disabled)
    (fun () -> f tel)

let launch_small () =
  let variant =
    List.hd
      (Mt_creator.Creator.generate
         (Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
            ~unroll:(2, 2) ~swap_after:false ()))
  in
  match Launcher.launch quick_opts (Source.From_variant variant) with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

let test_sampled_lanes_emit_chrome_trace () =
  with_lanes Mt_telemetry.Sampled (fun tel ->
      ignore (launch_small ());
      let insn_spans =
        List.filter
          (fun e -> List.mem_assoc "pc" e.Mt_telemetry.args)
          (Mt_telemetry.events tel)
      in
      check_bool "instruction spans recorded" true (insn_spans <> []);
      check_bool "on the simulated-time lane" true
        (List.for_all (fun e -> e.Mt_telemetry.tid >= 1_000_000) insn_spans);
      let samples = Mt_telemetry.samples tel in
      check_bool "cache.L1 series" true
        (List.exists (fun s -> s.Mt_telemetry.series_name = "cache.L1") samples);
      check_bool "cache.L3 series" true
        (List.exists (fun s -> s.Mt_telemetry.series_name = "cache.L3") samples);
      check_bool "hit/miss values" true
        (List.for_all
           (fun s ->
             List.mem_assoc "hit" s.Mt_telemetry.values
             && List.mem_assoc "miss" s.Mt_telemetry.values)
           samples);
      let json = Mt_telemetry.chrome_trace tel in
      Telemetry_tests.validate_json json;
      check_bool "counter events in the trace" true
        (Telemetry_tests.contains json "\"ph\":\"C\"");
      check_bool "named cache lane" true
        (Telemetry_tests.contains json "\"cache.L1\""))

let test_full_detail_records_every_instruction () =
  let sampled =
    with_lanes Mt_telemetry.Sampled (fun tel ->
        ignore (launch_small ());
        List.length
          (List.filter
             (fun e -> List.mem_assoc "pc" e.Mt_telemetry.args)
             (Mt_telemetry.events tel)))
  in
  let full =
    with_lanes Mt_telemetry.Full (fun tel ->
        ignore (launch_small ());
        List.length
          (List.filter
             (fun e -> List.mem_assoc "pc" e.Mt_telemetry.args)
             (Mt_telemetry.events tel)))
  in
  check_bool "full records more than sampled" true (full > sampled);
  check_bool "stride is 64" true (full >= 32 * sampled)

let test_off_detail_records_no_lanes () =
  with_lanes Mt_telemetry.Off (fun tel ->
      ignore (launch_small ());
      check_bool "no samples" true (Mt_telemetry.samples tel = []);
      check_bool "no pc-tagged events" true
        (List.for_all
           (fun e -> not (List.mem_assoc "pc" e.Mt_telemetry.args))
           (Mt_telemetry.events tel)))

let test_lanes_do_not_change_measurement () =
  let plain = launch_small () in
  let traced =
    with_lanes Mt_telemetry.Full (fun _ -> launch_small ())
  in
  Alcotest.(check (float 1e-9))
    "same median with and without lanes" plain.Report.value traced.Report.value

let tests =
  [
    Alcotest.test_case "json round-trips" `Quick test_json_round_trip;
    Alcotest.test_case "json rejects malformed input" `Quick
      test_json_parse_errors;
    Alcotest.test_case "json decodes unicode escapes" `Quick
      test_json_unicode_escape;
    Alcotest.test_case "snapshot save/load round-trips" `Quick
      test_snapshot_round_trip;
    Alcotest.test_case "snapshot loads newer schema ignoring unknown fields"
      `Quick test_snapshot_loads_newer_schema;
    Alcotest.test_case "identical snapshots diff empty" `Quick
      test_identical_snapshots_diff_empty;
    Alcotest.test_case "delta inside noise band is unchanged" `Quick
      test_delta_inside_band_is_unchanged;
    Alcotest.test_case "delta outside noise band is flagged" `Quick
      test_delta_outside_band_is_flagged;
    Alcotest.test_case "threshold scales the band" `Quick
      test_threshold_scales_the_band;
    Alcotest.test_case "min band floors zero variance" `Quick
      test_min_band_floors_zero_variance;
    Alcotest.test_case "added and removed variants" `Quick
      test_added_and_removed;
    Alcotest.test_case "hash mismatch is noted" `Quick test_hash_mismatch_noted;
    Alcotest.test_case "diff renders table and JSON" `Quick
      test_diff_render_and_json;
    Alcotest.test_case "quality regression gates independently" `Quick
      test_quality_regression_gates_independently;
    Alcotest.test_case "any verdict-rank increase is a quality regression"
      `Quick test_quality_noisy_step_is_a_regression;
    Alcotest.test_case "schema-1 snapshots load with quality defaults" `Quick
      test_schema1_snapshot_loads_with_quality_defaults;
    Alcotest.test_case "snapshot verdicts round-trip" `Quick
      test_snapshot_verdict_round_trips;
    Alcotest.test_case "study snapshot round-trips and diffs empty" `Quick
      test_study_snapshot_round_trip;
    Alcotest.test_case "exp_table stat entries" `Quick
      test_exp_table_stat_entries;
    Alcotest.test_case "sampled lanes emit a valid chrome trace" `Quick
      test_sampled_lanes_emit_chrome_trace;
    Alcotest.test_case "full detail records every instruction" `Quick
      test_full_detail_records_every_instruction;
    Alcotest.test_case "off detail records no lanes" `Quick
      test_off_detail_records_no_lanes;
    Alcotest.test_case "lanes do not change the measurement" `Quick
      test_lanes_do_not_change_measurement;
  ]
