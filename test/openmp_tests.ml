(* Tests for the OpenMP runtime model. *)

open Mt_machine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let cfg = Config.sandy_bridge_e31240

let rt threads = Mt_openmp.default_runtime ~threads

let test_static_chunks_cover_space () =
  let chunks = Mt_openmp.chunks_of (rt 4) ~total:10 in
  let covered =
    List.concat_map
      (fun c ->
        List.init c.Mt_openmp.iterations (fun k -> c.Mt_openmp.start_iteration + k))
      chunks
  in
  Alcotest.(check (list int)) "exact cover" (List.init 10 Fun.id)
    (List.sort compare covered)

let test_static_chunks_balanced () =
  let chunks = Mt_openmp.chunks_of (rt 4) ~total:10 in
  check_int "four chunks" 4 (List.length chunks);
  let sizes = List.map (fun c -> c.Mt_openmp.iterations) chunks in
  check_bool "ceil-balanced" true (List.sort compare sizes = [ 2; 2; 3; 3 ])

let test_static_more_threads_than_work () =
  let chunks = Mt_openmp.chunks_of (rt 4) ~total:2 in
  check_int "only two threads used" 2 (List.length chunks)

let test_static_chunked_schedule () =
  let rt = { (rt 2) with Mt_openmp.schedule = Mt_openmp.Static_chunk 3 } in
  let chunks = Mt_openmp.chunks_of rt ~total:10 in
  check_int "four chunks of <=3" 4 (List.length chunks);
  (* Round-robin threads: 0,1,0,1. *)
  Alcotest.(check (list int)) "round robin" [ 0; 1; 0; 1 ]
    (List.map (fun c -> c.Mt_openmp.thread) chunks);
  check_int "last chunk remainder" 1
    (List.nth chunks 3).Mt_openmp.iterations

let test_empty_iteration_space () =
  check_int "no chunks" 0 (List.length (Mt_openmp.chunks_of (rt 4) ~total:0))

let test_region_overhead_grows_with_threads () =
  check_bool "8 threads cost more than 2" true
    (Mt_openmp.region_overhead_cycles cfg (rt 4)
    > Mt_openmp.region_overhead_cycles cfg (rt 2))

let test_parallel_for_waits_for_slowest () =
  let cost = Mt_openmp.parallel_for cfg (rt 4) ~total:8 ~run_chunk:(fun c ~sharers ->
      check_int "sharers = active threads" 4 sharers;
      if c.Mt_openmp.thread = 2 then 1000. else 10.)
  in
  check_bool "slowest thread dominates" true (cost >= 1000.);
  check_bool "plus overhead only" true
    (cost < 1000. +. Mt_openmp.region_overhead_cycles cfg (rt 4) +. 1.)

let test_parallel_for_sums_per_thread_chunks () =
  let rt = { (rt 2) with Mt_openmp.schedule = Mt_openmp.Static_chunk 1 } in
  (* 4 chunks of size 1, 2 threads -> each thread runs 2 chunks of 50. *)
  let cost = Mt_openmp.parallel_for cfg rt ~total:4 ~run_chunk:(fun _ ~sharers:_ -> 50.) in
  check_bool "two chunks per thread" true
    (cost >= 100. && cost < 100. +. Mt_openmp.region_overhead_cycles cfg rt +. 1.)

let test_pin_map_compact () =
  let pins = Mt_openmp.pin_map cfg (rt 4) in
  Alcotest.(check (array int)) "compact pinning" [| 0; 1; 2; 3 |] pins

let test_threads_validated () =
  check_bool "zero threads rejected" true
    (try ignore (Mt_openmp.default_runtime ~threads:0); false
     with Invalid_argument _ -> true)

let prop_chunks_partition =
  QCheck.Test.make ~count:200 ~name:"openmp: static chunks partition any space"
    QCheck.(pair (int_range 1 16) (int_range 0 1000))
    (fun (threads, total) ->
      let chunks = Mt_openmp.chunks_of (rt threads) ~total in
      let sum = List.fold_left (fun acc c -> acc + c.Mt_openmp.iterations) 0 chunks in
      let sorted =
        List.sort compare (List.map (fun c -> c.Mt_openmp.start_iteration) chunks)
      in
      let no_overlap =
        let rec go = function
          | a :: (b :: _ as rest) -> a < b && go rest
          | _ -> true
        in
        go sorted
      in
      sum = total && no_overlap)

let tests =
  [
    Alcotest.test_case "static chunks cover the space" `Quick test_static_chunks_cover_space;
    Alcotest.test_case "static chunks balanced" `Quick test_static_chunks_balanced;
    Alcotest.test_case "more threads than work" `Quick test_static_more_threads_than_work;
    Alcotest.test_case "static chunked schedule" `Quick test_static_chunked_schedule;
    Alcotest.test_case "empty iteration space" `Quick test_empty_iteration_space;
    Alcotest.test_case "region overhead grows" `Quick test_region_overhead_grows_with_threads;
    Alcotest.test_case "parallel_for waits for slowest" `Quick test_parallel_for_waits_for_slowest;
    Alcotest.test_case "parallel_for sums chunks per thread" `Quick test_parallel_for_sums_per_thread_chunks;
    Alcotest.test_case "pin map compact" `Quick test_pin_map_compact;
    Alcotest.test_case "threads validated" `Quick test_threads_validated;
    QCheck_alcotest.to_alcotest prop_chunks_partition;
  ]
