(* Tests for the suite-time optimizer: scoring a synthetic history
   lineage (two perfectly-correlated stable variants plus one noisy
   one), the plan's JSON round-trip, and the end-to-end safety claim —
   replaying the pruned plan through filter_snapshot/expand_diff flags
   exactly the variants a full-suite diff would have flagged on an
   injected step regression. *)

module History = Mt_obsv.History
module Snapshot = Mt_obsv.Snapshot
module Diff = Mt_obsv.Diff
module Plan = Mt_optimize.Plan
module Optimizer = Mt_optimize.Optimizer

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

(* One run of the three-variant suite.  Each variant is (median,
   within-run spread): the five values straddle the median evenly, so
   Snapshot.of_values reports exactly that median and a CoV
   proportional to spread/median. *)
let run_snapshot variants =
  Snapshot.make ~tool:"test" ~created_at:0. ~kernel:("copy", "kh-1")
    ~machine:("laptop", "mh-1") ~seed:7
    (List.map
       (fun (key, median, spread) ->
         let values =
           Array.init 5 (fun i -> median +. (spread *. float_of_int (i - 2)))
         in
         Snapshot.of_values ~key ~seed:7 values)
       variants)

let append_ok dir s =
  match History.append ~dir s with
  | Ok entry -> entry
  | Error msg -> Alcotest.failf "append failed: %s" msg

let load_ok dir =
  match History.load dir with
  | Ok hist -> hist
  | Error msg -> Alcotest.failf "load failed: %s" msg

(* Six archived runs: "a" and "b" are stable and move in lockstep (b is
   2x a run for run, so their median series share a rank order); "c" is
   so noisy within each run that its CoV blows the stability gate. *)
let a_medians = [| 2.0; 2.002; 2.001; 2.003; 2.0; 2.002 |]

let synth_archive () =
  let dir = temp_dir "mtopt" in
  Array.iter
    (fun a ->
      ignore
        (append_ok dir
           (run_snapshot
              [ ("a", a, 0.001); ("b", 2. *. a, 0.001); ("c", 5.0, 0.3) ])))
    a_medians;
  dir

let optimize_ok ?knobs hist =
  match History.latest_lineage hist with
  | None -> Alcotest.fail "latest_lineage on a non-empty archive"
  | Some lineage -> (
    match Optimizer.optimize ?knobs ~created_at:123.5 hist lineage with
    | Ok plan -> plan
    | Error msg -> Alcotest.failf "optimize failed: %s" msg)

let test_optimize_prunes_redundant () =
  let dir = synth_archive () in
  let plan = optimize_ok (load_ok dir) in
  check_int "plan scored the whole lineage" 6 plan.Plan.runs;
  check_string "lineage kernel recorded" "copy" plan.Plan.kernel_name;
  (* Exactly one of the correlated pair is dropped, onto the other. *)
  check_int "one variant dropped" 1 (List.length plan.Plan.drop);
  (match plan.Plan.drop with
  | [ d ] ->
    check_string "b is redundant with a" "b" d.Plan.variant;
    check_string "its canary is a" "a" d.Plan.canary;
    check_bool "correlation clears the threshold" true
      (Float.abs d.Plan.correlation >= 0.95)
  | _ -> Alcotest.fail "expected exactly one drop");
  check_bool "dropped variant is deselected" false (Plan.selects plan "b");
  check_bool "kept variant stays selected" true (Plan.selects plan "a");
  check_bool "unknown variants stay selected" true
    (Plan.selects plan "added-later");
  (* The stable canary is floored; the noisy variant keeps its full
     adaptive budget. *)
  (match Plan.find_keep plan "a" with
  | Some k ->
    check_bool "canary is stable" true k.Plan.stable;
    check_bool "canary floored to min_experiments"
      true
      (k.Plan.experiments = Some Optimizer.default_knobs.Plan.min_experiments)
  | None -> Alcotest.fail "a must be kept");
  match Plan.find_keep plan "c" with
  | Some k ->
    check_bool "noisy variant is not stable" false k.Plan.stable;
    check_bool "noisy variant keeps the full budget" true
      (k.Plan.experiments = None)
  | None -> Alcotest.fail "c must be kept"

let test_optimize_short_lineage_keeps_all () =
  let dir = temp_dir "mtopt" in
  for _ = 1 to 2 do
    ignore
      (append_ok dir
         (run_snapshot [ ("a", 2.0, 0.001); ("b", 4.0, 0.001) ]))
  done;
  let plan = optimize_ok (load_ok dir) in
  check_int "nothing dropped under min_runs" 0 (List.length plan.Plan.drop);
  check_int "everything kept" 2 (List.length plan.Plan.keep);
  List.iter
    (fun (k : Plan.keep) ->
      check_bool "no floor without enough history" true (k.Plan.experiments = None))
    plan.Plan.keep

let test_plan_json_round_trip () =
  let dir = synth_archive () in
  let plan = optimize_ok (load_ok dir) in
  match Plan.of_string (Plan.to_string plan) with
  | Error msg -> Alcotest.failf "plan did not decode: %s" msg
  | Ok plan' ->
    check_bool "plan survives the JSON round-trip" true (plan = plan')

(* The acceptance claim: on an injected step regression of the canary
   (which the dropped twin shares, since they are correlated), the
   pruned report path — filter both snapshots, diff, expand — flags the
   same variants with the same exit verdict as the full-suite diff. *)
let test_pruned_report_matches_full () =
  let dir = synth_archive () in
  let plan = optimize_ok (load_ok dir) in
  let baseline =
    run_snapshot [ ("a", 2.0, 0.001); ("b", 4.0, 0.001); ("c", 5.0, 0.3) ]
  in
  let current_full =
    run_snapshot [ ("a", 2.5, 0.001); ("b", 5.0, 0.001); ("c", 5.0, 0.3) ]
  in
  (* The pruned run never measured b at all. *)
  let current_pruned =
    run_snapshot [ ("a", 2.5, 0.001); ("c", 5.0, 0.3) ]
  in
  let flagged d =
    List.filter_map
      (fun (e : Diff.entry) ->
        match e.Diff.verdict with
        | Diff.Regression -> Some e.Diff.key
        | _ -> None)
      d.Diff.entries
    |> List.sort compare
  in
  let full = Diff.compare ~baseline current_full in
  let pruned =
    Plan.expand_diff plan
      (Diff.compare
         ~baseline:(Plan.filter_snapshot plan baseline)
         (Plan.filter_snapshot plan current_pruned))
  in
  check_bool "full suite sees the regression" true (Diff.has_regressions full);
  check_bool "pruned suite reaches the same exit verdict" true
    (Diff.has_regressions pruned);
  check_bool "flagged sets are identical" true (flagged full = flagged pruned);
  check_bool "the twin's flag is inherited, not measured" true
    (List.exists
       (fun (e : Diff.entry) ->
         e.Diff.key = "b" && e.Diff.current = None && e.Diff.baseline = None)
       pruned.Diff.entries);
  check_bool "inheritance is recorded in the provenance notes" true
    (List.exists
       (fun note ->
         let has_sub sub =
           let n = String.length note and m = String.length sub in
           let rec go i = i + m <= n && (String.sub note i m = sub || go (i + 1)) in
           m = 0 || go 0
         in
         has_sub "b" && has_sub "canary")
       pruned.Diff.provenance_notes)

(* A quiet current run must stay quiet through the pruned path: no
   synthesized entries, no regressions. *)
let test_pruned_report_clean_run () =
  let dir = synth_archive () in
  let plan = optimize_ok (load_ok dir) in
  let baseline =
    run_snapshot [ ("a", 2.0, 0.001); ("b", 4.0, 0.001); ("c", 5.0, 0.3) ]
  in
  let current_pruned = run_snapshot [ ("a", 2.0, 0.001); ("c", 5.0, 0.3) ] in
  let pruned =
    Plan.expand_diff plan
      (Diff.compare
         ~baseline:(Plan.filter_snapshot plan baseline)
         (Plan.filter_snapshot plan current_pruned))
  in
  check_bool "clean pruned run gates clean" false (Diff.has_regressions pruned);
  check_bool "no synthesized entries without a believed move" true
    (not (List.exists (fun (e : Diff.entry) -> e.Diff.key = "b") pruned.Diff.entries))

let tests =
  [
    Alcotest.test_case "optimize: prunes the redundant twin" `Quick
      test_optimize_prunes_redundant;
    Alcotest.test_case "optimize: short lineage keeps all" `Quick
      test_optimize_short_lineage_keeps_all;
    Alcotest.test_case "plan: JSON round-trip" `Quick test_plan_json_round_trip;
    Alcotest.test_case "plan: pruned report matches full suite" `Quick
      test_pruned_report_matches_full;
    Alcotest.test_case "plan: clean pruned run gates clean" `Quick
      test_pruned_report_clean_run;
  ]
