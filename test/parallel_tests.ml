(* Tests for the Domain pool and the result cache: ordering, exception
   propagation, parallel == sequential determinism, and "a second run
   re-simulates nothing". *)

open Mt_machine
open Mt_launcher

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_order () =
  let items = Array.init 103 (fun i -> i) in
  let doubled = Mt_parallel.Pool.map ~domains:4 (fun i -> 2 * i) items in
  Array.iteri (fun i v -> check_int "slot" (2 * i) v) doubled

let test_pool_degenerate () =
  check_bool "empty input" true
    (Mt_parallel.Pool.map ~domains:4 (fun i -> i) [||] = [||]);
  (* More domains than items is clamped, not an error. *)
  check_bool "one item, many domains" true
    (Mt_parallel.Pool.map ~domains:16 string_of_int [| 7 |] = [| "7" |]);
  check_bool "lists too" true
    (Mt_parallel.Pool.map_list ~domains:3 succ [ 1; 2; 3 ] = [ 2; 3; 4 ])

let test_pool_exception () =
  match
    Mt_parallel.Pool.map ~domains:4
      (fun i -> if i = 5 then failwith "boom" else i)
      (Array.init 16 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected the worker's exception to re-raise"
  | exception Failure msg -> check_string "message survives" "boom" msg

exception Custom of int

let test_pool_single_failure_preserves_exception () =
  (* A single failing shard re-raises the original exception — type and
     payload intact, backtrace carried over via raise_with_backtrace. *)
  Printexc.record_backtrace true;
  match
    Mt_parallel.Pool.map ~domains:4
      (fun i -> if i = 2 then raise (Custom 17) else i)
      (Array.init 16 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Custom to re-raise"
  | exception Custom n -> check_int "payload survives" 17 n

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_pool_multi_failure_reports_count () =
  (* Items 0 and 1 live on shards 0 and 1: two shards fail, and the
     raised Failure says so instead of silently surfacing only one. *)
  match
    Mt_parallel.Pool.map ~domains:4
      (fun i -> if i < 2 then failwith (Printf.sprintf "boom-%d" i) else i)
      (Array.init 16 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected a Failure naming the shard count"
  | exception Failure msg ->
    check_bool "counts the failed shards" true (contains msg "2 of 4 shards failed");
    check_bool "carries the first exception" true (contains msg "boom-0")

let test_try_map_siblings_survive () =
  (* One exploding item must not take down the results of the other
     items on its shard, nor any other shard. *)
  let results =
    Mt_parallel.Pool.try_map ~domains:4
      (fun i -> if i = 5 then failwith "boom" else 2 * i)
      (Array.init 16 (fun i -> i))
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> check_int "sibling result" (2 * i) v
      | Error (e, _) ->
        check_int "only item 5 fails" 5 i;
        check_bool "original exception" true (e = Failure "boom"))
    results

let test_try_map_all_fail () =
  let results =
    Mt_parallel.Pool.try_map_list ~domains:2
      (fun _ -> failwith "everything is on fire")
      [ 1; 2; 3 ]
  in
  check_int "every item reports" 3 (List.length results);
  check_bool "all errors" true
    (List.for_all (function Error _ -> true | Ok _ -> false) results)

(* ------------------------------------------------------------------ *)
(* Cache primitive                                                     *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mt-cache-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o700;
  d

let test_cache_memory () =
  let c = Mt_parallel.Cache.create () in
  let key = Mt_parallel.Cache.digest_key [ "a"; "b" ] in
  check_bool "miss first" true (Mt_parallel.Cache.find c key = None);
  Mt_parallel.Cache.store c key "payload";
  check_bool "hit after store" true
    (Mt_parallel.Cache.find c key = Some "payload");
  check_int "hits" 1 (Mt_parallel.Cache.hits c);
  check_int "misses" 1 (Mt_parallel.Cache.misses c)

let test_cache_key_injective () =
  (* ["ab"; "c"] and ["a"; "bc"] must not collide: components are
     length-prefixed before digesting. *)
  check_bool "length-prefixed" true
    (Mt_parallel.Cache.digest_key [ "ab"; "c" ]
    <> Mt_parallel.Cache.digest_key [ "a"; "bc" ])

let test_cache_disk_persistence () =
  let dir = temp_dir () in
  let key = Mt_parallel.Cache.digest_key [ "persist" ] in
  let c1 = Mt_parallel.Cache.create ~dir () in
  Mt_parallel.Cache.store c1 key "42";
  (* A brand-new handle over the same directory sees the entry. *)
  let c2 = Mt_parallel.Cache.create ~dir () in
  check_bool "disk hit" true (Mt_parallel.Cache.find c2 key = Some "42");
  check_int "counted as hit" 1 (Mt_parallel.Cache.hits c2)

let test_cache_store_tmp_collision () =
  let dir = temp_dir () in
  let key = Mt_parallel.Cache.digest_key [ "collide" ] in
  let path = Filename.concat dir (key ^ ".bin") in
  (* Pre-plant the first temp name this process would pick (a stale
     file left by a crashed twin whose pid got recycled): O_EXCL must
     skip to the next suffix, never truncate into the planted file. *)
  let planted =
    Printf.sprintf "%s.%d.%d.0.tmp" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin planted in
  output_string oc "stale";
  close_out oc;
  let c = Mt_parallel.Cache.create ~dir () in
  Mt_parallel.Cache.store c key "fresh";
  let c2 = Mt_parallel.Cache.create ~dir () in
  check_bool "stored around the stale tmp" true
    (Mt_parallel.Cache.find c2 key = Some "fresh");
  check_string "planted file untouched" "stale"
    (In_channel.with_open_bin planted In_channel.input_all)

(* The writer half of the multi-process stress test.  OCaml 5 forbids
   Unix.fork once domains exist (the pool tests above spawn some), so
   the test re-execs its own binary with MT_CACHE_STRESS_WRITER set —
   test_microtools.ml dispatches here before Alcotest ever runs. *)
let stress_payload_size = 4096

let cache_stress_writer spec =
  match String.split_on_char '|' spec with
  | [ dir; key; ch; rounds ] when String.length ch = 1 ->
    let c = Mt_parallel.Cache.create ~dir () in
    let payload = String.make stress_payload_size ch.[0] in
    for _ = 1 to int_of_string rounds do
      Mt_parallel.Cache.store c key payload
    done;
    exit 0
  | _ ->
    prerr_endline ("bad MT_CACHE_STRESS_WRITER spec: " ^ spec);
    exit 2

let test_cache_multiprocess_stress () =
  (* N processes hammer the same key in one shared directory while this
     process keeps reading it cold: every observed value must be one
     writer's complete payload (single repeated byte), never an
     interleaving, and the final entry must decode cleanly. *)
  let dir = temp_dir () in
  let key = Mt_parallel.Cache.digest_key [ "shared" ] in
  let writers = 8 and rounds = 50 and size = stress_payload_size in
  let done_flag = Filename.concat dir "writers-done" in
  (* system() forks at the C level (exec immediately after), which is
     the one fork flavour still legal with live domains. *)
  let cmd =
    Printf.sprintf
      "{ for w in a b c d e f g h; do MT_CACHE_STRESS_WRITER=\"%s|%s|$w|%d\" \
       %s & done; wait; : > %s; } &"
      dir key rounds
      (Filename.quote Sys.executable_name)
      (Filename.quote done_flag)
  in
  check_int "writers launched" 0 (Sys.command cmd);
  ignore writers;
  let torn = ref 0 in
  let deadline = Unix.gettimeofday () +. 60. in
  while (not (Sys.file_exists done_flag)) && Unix.gettimeofday () < deadline do
    (* A fresh handle per read defeats the in-memory promotion — every
       lookup really goes to disk, concurrent with the writers. *)
    let c = Mt_parallel.Cache.create ~dir () in
    (match Mt_parallel.Cache.find c key with
    | None -> ()
    | Some data ->
      if
        String.length data <> size
        || String.exists (fun ch -> ch <> data.[0]) data
      then incr torn);
    ignore (Unix.sleepf 0.001)
  done;
  check_bool "writers finished in time" true (Sys.file_exists done_flag);
  check_int "no torn reads" 0 !torn;
  let c = Mt_parallel.Cache.create ~dir () in
  let v =
    Mt_parallel.Cache.with_cache (Some c)
      ~key:(fun () -> key)
      (fun () -> Alcotest.fail "entry must exist after the writers exit")
      ~encode:Fun.id
      ~decode:(fun data ->
        if String.exists (fun ch -> ch <> data.[0]) data then failwith "torn"
        else data)
  in
  check_int "decode failures" 0 (Mt_parallel.Cache.decode_failures c);
  check_int "payload intact" size (String.length v)

let test_cache_eviction_lru () =
  let dir = temp_dir () in
  let kb = 1024 in
  let c = Mt_parallel.Cache.create ~dir ~max_bytes:(3 * kb) () in
  let key i = Mt_parallel.Cache.digest_key [ "evict"; string_of_int i ] in
  let path k = Filename.concat dir (k ^ ".bin") in
  Mt_parallel.Cache.store c (key 1) (String.make kb 'x');
  Mt_parallel.Cache.store c (key 2) (String.make kb 'y');
  (* Age entries 1 and 2 explicitly so the LRU order is deterministic
     regardless of filesystem timestamp granularity. *)
  let now = Unix.gettimeofday () in
  Unix.utimes (path (key 1)) (now -. 200.) (now -. 200.);
  Unix.utimes (path (key 2)) (now -. 100.) (now -. 100.);
  Mt_parallel.Cache.store c (key 3) (String.make kb 'z');
  check_bool "under budget keeps everything" true
    (Sys.file_exists (path (key 1)));
  check_int "no evictions yet" 0 (Mt_parallel.Cache.evictions c);
  Mt_parallel.Cache.store c (key 4) (String.make kb 'w');
  check_bool "oldest entry evicted" false (Sys.file_exists (path (key 1)));
  check_bool "second-oldest survives" true (Sys.file_exists (path (key 2)));
  check_bool "newest survives" true (Sys.file_exists (path (key 4)));
  check_int "one eviction counted" 1 (Mt_parallel.Cache.evictions c);
  (* An entry larger than the whole budget still lands: the entry just
     written is exempt from its own eviction pass. *)
  let c2 = Mt_parallel.Cache.create ~dir ~max_bytes:kb () in
  Mt_parallel.Cache.store c2 (key 5) (String.make (2 * kb) 'v');
  check_bool "oversized store survives" true (Sys.file_exists (path (key 5)));
  check_bool "older entries trimmed" false (Sys.file_exists (path (key 2)))

(* ------------------------------------------------------------------ *)
(* Study integration: determinism and zero re-simulation               *)
(* ------------------------------------------------------------------ *)

let x5650 = Config.nehalem_x5650_2s

let quick_opts =
  {
    (Options.default x5650) with
    Options.array_bytes = 16 * 1024;
    repetitions = 1;
    experiments = 2;
  }

(* Sum of 2^u for u in 1..6 = 126 variants: comfortably past the
   64-variant floor the acceptance criterion asks for. *)
let big_spec =
  Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
    ~unroll:(1, 6) ()

let run_config ?cache domains =
  Microtools.Study.Run_config.(default |> with_domains domains |> with_cache cache)

let test_parallel_matches_sequential () =
  let study = Microtools.Study.create big_spec quick_opts in
  check_bool "enough variants" true
    (List.length (Microtools.Study.variants study) >= 64);
  let seq = Microtools.Study.run ~config:(run_config 1) study in
  let par = Microtools.Study.run ~config:(run_config 4) study in
  check_string "byte-identical CSV"
    (Mt_stats.Csv.to_string (Microtools.Study.csv seq))
    (Mt_stats.Csv.to_string (Microtools.Study.csv par))

let test_second_run_fully_cached () =
  let cache = Mt_parallel.Cache.create () in
  let study = Microtools.Study.create big_spec quick_opts in
  let n = List.length (Microtools.Study.variants study) in
  let config = run_config ~cache 2 in
  let first = Microtools.Study.run ~config study in
  check_int "cold run misses everything" n (Mt_parallel.Cache.misses cache);
  check_int "cold run hits nothing" 0 (Mt_parallel.Cache.hits cache);
  let second = Microtools.Study.run ~config study in
  (* Zero simulator invocations the second time: every lookup hits and
     the miss counter does not move. *)
  check_int "warm run all hits" n (Mt_parallel.Cache.hits cache);
  check_int "warm run no new misses" n (Mt_parallel.Cache.misses cache);
  check_string "replayed results identical"
    (Mt_stats.Csv.to_string (Microtools.Study.csv first))
    (Mt_stats.Csv.to_string (Microtools.Study.csv second))

let test_cache_key_sensitivity () =
  let study = Microtools.Study.create big_spec quick_opts in
  let v = List.hd (Microtools.Study.variants study) in
  let base = Microtools.Study.cache_key quick_opts v in
  (* Changing a measurement-relevant option changes the key... *)
  check_bool "array size matters" true
    (base
    <> Microtools.Study.cache_key
         { quick_opts with Options.array_bytes = 32 * 1024 }
         v);
  (* ...but output-only settings (where the CSV goes) do not. *)
  check_string "csv path is not part of the key" base
    (Microtools.Study.cache_key
       { quick_opts with Options.csv_path = Some "/tmp/elsewhere.csv" }
       v)

let tests =
  [
    Alcotest.test_case "pool preserves order" `Quick test_pool_order;
    Alcotest.test_case "pool degenerate inputs" `Quick test_pool_degenerate;
    Alcotest.test_case "pool re-raises worker exception" `Quick
      test_pool_exception;
    Alcotest.test_case "pool single failure keeps exception type" `Quick
      test_pool_single_failure_preserves_exception;
    Alcotest.test_case "pool multi failure reports shard count" `Quick
      test_pool_multi_failure_reports_count;
    Alcotest.test_case "try_map keeps sibling results" `Quick
      test_try_map_siblings_survive;
    Alcotest.test_case "try_map total failure still reports per item" `Quick
      test_try_map_all_fail;
    Alcotest.test_case "cache memory round-trip" `Quick test_cache_memory;
    Alcotest.test_case "cache key injective" `Quick test_cache_key_injective;
    Alcotest.test_case "cache disk persistence" `Quick
      test_cache_disk_persistence;
    Alcotest.test_case "cache tmp collision" `Quick
      test_cache_store_tmp_collision;
    Alcotest.test_case "cache multi-process stress" `Quick
      test_cache_multiprocess_stress;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_eviction_lru;
    Alcotest.test_case "parallel CSV == sequential CSV" `Slow
      test_parallel_matches_sequential;
    Alcotest.test_case "second run re-simulates nothing" `Slow
      test_second_run_fully_cached;
    Alcotest.test_case "cache key sensitivity" `Quick
      test_cache_key_sensitivity;
  ]
