(* Tests for the bottleneck attribution profiler: the two engines must
   produce bit-identical attributions, the 13 category cycle totals
   must sum exactly to the simulated cycles, the Mt_profile surface
   (vector/dominant/render/folded) must behave, turning --profile on
   must not change a single measured number, and the snapshot/diff
   layers must carry and localize the profile. *)

open Mt_machine
open Mt_isa
open Mt_creator
open Mt_launcher

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let cfg = Config.nehalem_x5650_2s

let rsi = Reg.gpr64 Reg.RSI

let rdi = Reg.gpr64 Reg.RDI

let eax = Reg.gpr32 Reg.RAX

let i op ops = Insn.Insn (Insn.make op ops)

let loop ?(step = 1) body =
  [ Insn.Label "L" ] @ body
  @ [
      i Insn.ADD [ Operand.imm 1; Operand.reg eax ];
      i Insn.SUB [ Operand.imm step; Operand.reg rdi ];
      i (Insn.Jcc Insn.GE) [ Operand.label "L" ];
      i Insn.RET [];
    ]

(* Cycle totals are non-negative, so the bit patterns order like the
   floats and the ulp distance is a plain bits subtraction. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let ulps_apart a b =
  Int64.abs (Int64.sub (Int64.bits_of_float a) (Int64.bits_of_float b))

let show_cats a =
  String.concat ", "
    (List.filteri
       (fun c _ -> (Attribution.category_cycles a).(c) <> 0.)
       (List.init Attribution.categories (fun c ->
            Printf.sprintf "%s=%.17g" (Attribution.category_name c)
              (Attribution.category_cycles a).(c))))

(* Run the same program through both engines with attribution enabled:
   outcomes and attributions (categories, counts, port pressure,
   critical path) must be bit-identical, and the compensated category
   sum must equal the simulated cycles within [max_ulps] (0 = exactly). *)
let check_profiled ?(what = "profiled") ?(max_ulps = 0L) ?init ?max_instructions
    ?(machine = cfg) program =
  match Core.compile program with
  | Error e -> Alcotest.failf "%s: compile: %s" what (Core.error_to_string e)
  | Ok compiled ->
    let attr_fast = Attribution.create () in
    let attr_ref = Attribution.create () in
    let fast =
      Core.run ?init ?max_instructions ~attr:attr_fast machine
        (Memory.create machine) compiled
    in
    let reference =
      Core.run_reference ?init ?max_instructions ~attr:attr_ref machine
        (Memory.create machine) compiled
    in
    if fast <> reference then Alcotest.failf "%s: outcomes diverge" what;
    if Attribution.category_cycles attr_fast <> Attribution.category_cycles attr_ref
    then
      Alcotest.failf "%s: category cycles diverge\n  fast: %s\n  ref:  %s" what
        (show_cats attr_fast) (show_cats attr_ref);
    check_bool
      (what ^ ": per-category instruction counts agree")
      true
      (Attribution.category_insns attr_fast = Attribution.category_insns attr_ref);
    check_bool
      (what ^ ": port pressure agrees")
      true
      (Attribution.port_pressure attr_fast = Attribution.port_pressure attr_ref);
    check_bool
      (what ^ ": critical paths agree")
      true
      (Attribution.critical_path attr_fast = Attribution.critical_path attr_ref);
    (match fast with
    | Error _ -> ()
    | Ok o ->
      let total = Attribution.total attr_fast in
      let ulps = ulps_apart total o.Core.cycles in
      if ulps > max_ulps then
        Alcotest.failf
          "%s: categories sum to %.17g, cycles are %.17g (%Ld ulps; %s)" what
          total o.Core.cycles ulps (show_cats attr_fast));
    (fast, attr_fast)

(* ------------------------------------------------------------------ *)
(* Directed attribution cases                                          *)
(* ------------------------------------------------------------------ *)

let dominant_of attr =
  let cycles = Attribution.category_cycles attr in
  let best = ref 0 in
  Array.iteri (fun c v -> if v > cycles.(!best) then best := c) cycles;
  Attribution.category_name !best

let test_dependency_chain_dominates () =
  let rbx = Reg.gpr64 Reg.RBX in
  (* A serial IMUL chain: every link waits on the previous result, so
     nearly every frontier advance is dependency-bound. *)
  let _, attr =
    check_profiled ~what:"imul chain" ~init:[ (rdi, 299) ]
      (loop
         [
           i Insn.IMUL [ Operand.imm 3; Operand.reg rbx ];
           i Insn.IMUL [ Operand.imm 5; Operand.reg rbx ];
           i Insn.IMUL [ Operand.imm 7; Operand.reg rbx ];
         ])
  in
  Alcotest.(check string) "chain is dependency-bound" "dependency"
    (dominant_of attr)

let test_memory_strides_dominate () =
  let xmm0 = Reg.xmm 0 in
  (* Line-sized strides through a multi-MiB footprint: the memory
     pipeline, not the core, sets the pace. *)
  let _, attr =
    check_profiled ~what:"stride stream" ~init:[ (rdi, 999); (rsi, 1 lsl 23) ]
      (loop
         [
           i Insn.MOVSD [ Operand.mem ~base:rsi (); Operand.reg xmm0 ];
           i Insn.ADD [ Operand.imm 64; Operand.reg rsi ];
         ])
  in
  let name = dominant_of attr in
  check_bool
    (Printf.sprintf "stride stream is memory-bound (got %s)" name)
    true
    (String.length name > 4 && String.sub name 0 4 = "mem-")

let test_attribution_accumulates_across_calls () =
  let rbx = Reg.gpr64 Reg.RBX in
  let program = loop [ i Insn.IMUL [ Operand.imm 3; Operand.reg rbx ] ] in
  let compiled =
    match Core.compile program with
    | Ok c -> c
    | Error e -> Alcotest.fail (Core.error_to_string e)
  in
  let attr = Attribution.create () in
  let memory = Memory.create cfg in
  let cycles_of = function
    | Ok o -> o.Core.cycles
    | Error e -> Alcotest.fail (Core.error_to_string e)
  in
  let c1 = cycles_of (Core.run ~init:[ (rdi, 99) ] ~attr cfg memory compiled) in
  let c2 = cycles_of (Core.run ~init:[ (rdi, 199) ] ~attr cfg memory compiled) in
  Alcotest.(check (float 0.))
    "two profiled calls sum both runs' cycles" (c1 +. c2)
    (Attribution.total attr);
  Attribution.reset attr;
  Alcotest.(check (float 0.)) "reset zeroes the accumulators" 0.
    (Attribution.total attr)

let test_critical_path_shape () =
  let rbx = Reg.gpr64 Reg.RBX in
  let _, attr =
    check_profiled ~what:"chain shape" ~init:[ (rdi, 49) ]
      (loop
         [
           i Insn.IMUL [ Operand.imm 3; Operand.reg rbx ];
           i Insn.IMUL [ Operand.imm 5; Operand.reg rbx ];
         ])
  in
  let chain = Attribution.critical_path attr in
  check_bool "chain is non-empty" true (chain <> []);
  let rec monotone = function
    | (_, c1, _) :: ((_, c2, _) :: _ as rest) ->
      c1 <= c2 && monotone rest
    | _ -> true
  in
  check_bool "completions are non-decreasing along the chain" true
    (monotone chain);
  List.iter
    (fun (pc, _, edge) ->
      check_bool "pcs are in range" true (pc >= 0);
      check_bool "edges are non-negative" true (edge >= 0.))
    chain

(* ------------------------------------------------------------------ *)
(* Golden corpus: attribution across every description x preset        *)
(* ------------------------------------------------------------------ *)

let corpus_dir =
  if Sys.file_exists "../descriptions" then "../descriptions" else "descriptions"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sample n xs =
  let len = List.length xs in
  if len <= n then xs
  else
    List.filteri (fun idx _ -> idx = len - 1 || idx mod (len / n) = 0) xs

let golden_init abi passes =
  let bases = List.init 8 (fun idx -> (idx + 1) * (1 lsl 21)) in
  (abi.Abi.counter, Abi.trip_count_for_passes abi passes)
  :: List.mapi
       (fun idx (r, _step) -> (r, List.nth bases (idx mod 8)))
       abi.Abi.pointers

let test_golden_corpus_profiled () =
  let kernels = Sys.readdir corpus_dir in
  Array.sort compare kernels;
  let kernels =
    Array.to_list kernels |> List.filter (fun f -> Filename.check_suffix f ".xml")
  in
  let checked = ref 0 in
  List.iter
    (fun file ->
      let text = read_file (Filename.concat corpus_dir file) in
      let spec =
        match Description.of_string text with
        | Ok spec -> spec
        | Error msg -> Alcotest.failf "%s: %s" file msg
      in
      let variants = sample 2 (Creator.generate spec) in
      List.iter
        (fun (name, machine) ->
          List.iter
            (fun v ->
              let abi =
                match v.Variant.abi with
                | Some abi -> abi
                | None -> Alcotest.failf "%s: variant without abi" file
              in
              ignore
                (check_profiled
                   ~what:(Printf.sprintf "%s/%s/%s" file name (Variant.id v))
                   ~machine
                   ~init:(golden_init abi 16)
                   (Variant.concrete_body v));
              incr checked)
            variants)
        Config.presets)
    kernels;
  check_bool "covered the corpus" true (!checked >= 11 * 3 * 2)

(* ------------------------------------------------------------------ *)
(* QCheck: random programs attribute identically and conserve cycles   *)
(* ------------------------------------------------------------------ *)

let prop_random_programs_profiled =
  let open QCheck in
  let gpr = Gen.oneofl [ Reg.RBX; Reg.RCX; Reg.RDX; Reg.R8; Reg.R9 ] in
  let body_insn =
    Gen.(
      oneof
        [
          ( oneofl [ Insn.ADD; Insn.SUB; Insn.AND; Insn.OR; Insn.XOR; Insn.IMUL ]
          >>= fun op ->
            gpr >>= fun d ->
            oneof
              [
                (0 -- 64 >|= fun n -> Insn.make op [ Operand.imm n; Operand.reg (Reg.gpr64 d) ]);
                ( gpr >|= fun s ->
                  Insn.make op [ Operand.reg (Reg.gpr64 s); Operand.reg (Reg.gpr64 d) ] );
              ] );
          ( oneofl [ Insn.ADDSD; Insn.MULSS; Insn.ADDPS; Insn.MULPD; Insn.DIVSD ]
          >>= fun op ->
            0 -- 3 >>= fun a ->
            0 -- 3 >|= fun b ->
            Insn.make op [ Operand.reg (Reg.xmm a); Operand.reg (Reg.xmm b) ] );
          ( oneofl [ 0; 4; 8; 60; 64; 4096 ] >>= fun disp ->
            0 -- 3 >>= fun x ->
            oneofl
              [
                Insn.make Insn.MOVSD
                  [ Operand.mem ~base:rsi ~disp (); Operand.reg (Reg.xmm x) ];
                Insn.make Insn.MOVUPS
                  [ Operand.mem ~base:rsi ~disp (); Operand.reg (Reg.xmm x) ];
                Insn.make Insn.MOVSS
                  [ Operand.reg (Reg.xmm x); Operand.mem ~base:rsi ~disp () ];
              ]
            >|= fun insn -> insn );
          ( oneofl [ 4; 8; 16; 64; 4160 ] >|= fun step ->
            Insn.make Insn.ADD [ Operand.imm step; Operand.reg rsi ] );
        ])
  in
  let gen =
    Gen.(
      list_size (1 -- 8) body_insn >>= fun body ->
      1 -- 40 >|= fun trips -> (body, trips))
  in
  Test.make ~count:60
    ~name:"profile: random programs attribute identically, cycles conserve"
    (make gen)
    (fun (body, trips) ->
      ignore
        (check_profiled ~what:"random program" ~max_ulps:1L
           ~init:[ (rdi, trips); (rsi, 1 lsl 22) ]
           (loop (List.map (fun x -> Insn.Insn x) body)));
      true)

(* ------------------------------------------------------------------ *)
(* Mt_profile surface                                                  *)
(* ------------------------------------------------------------------ *)

let breakdown_of_program ?init program =
  match Core.compile program with
  | Error e -> Alcotest.fail (Core.error_to_string e)
  | Ok compiled ->
    let attr = Attribution.create () in
    (match Core.run ?init ~attr cfg (Memory.create cfg) compiled with
    | Error e -> Alcotest.fail (Core.error_to_string e)
    | Ok o ->
      ( o,
        Mt_profile.of_attribution
          ~name:(fun pc -> Core.disassemble compiled ~pc)
          attr ))

let chain_program =
  loop
    [
      i Insn.IMUL [ Operand.imm 3; Operand.reg (Reg.gpr64 Reg.RBX) ];
      i Insn.IMUL [ Operand.imm 5; Operand.reg (Reg.gpr64 Reg.RBX) ];
    ]

let test_breakdown_shape () =
  let o, b = breakdown_of_program ~init:[ (rdi, 99) ] chain_program in
  check_int "all categories present" Attribution.categories
    (List.length b.Mt_profile.cats);
  Alcotest.(check (float 0.))
    "breakdown total equals simulated cycles" o.Core.cycles
    b.Mt_profile.total_cycles;
  let shares = Mt_profile.vector b in
  check_int "vector aligns positionally" Attribution.categories
    (List.length shares);
  let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0. shares in
  check_bool "shares sum to 1" true (Float.abs (sum -. 1.) < 1e-9);
  (match Mt_profile.dominant b with
  | Some (name, share) ->
    Alcotest.(check string) "dominant category" "dependency" name;
    check_bool "dominant share is the largest" true (share > 0.3)
  | None -> Alcotest.fail "profiled run must have a dominant category");
  let rendered = Mt_profile.render ~label:"chain" b in
  check_bool "render names the label" true (contains rendered "chain");
  check_bool "render shows the critical path" true
    (contains rendered "critical path")

let test_folded_format () =
  let _, b = breakdown_of_program ~init:[ (rdi, 99) ] chain_program in
  let folded = Mt_profile.folded ~root:"loadstore u1" b in
  let lines = String.split_on_char '\n' folded in
  let lines = List.filter (fun l -> l <> "") lines in
  check_bool "folded output is non-empty" true (lines <> []);
  List.iter
    (fun line ->
      (* stack frame1;frame2;... <integer weight> *)
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "folded line without weight: %S" line
      | Some idx ->
        let stack = String.sub line 0 idx in
        let weight = String.sub line (idx + 1) (String.length line - idx - 1) in
        check_bool
          (Printf.sprintf "integer weight in %S" line)
          true
          (int_of_string_opt weight <> None);
        (* Frames must be sanitized: the only spaces live in the
           weight separator, so a collapsed-stack consumer never
           mis-splits. *)
        check_bool
          (Printf.sprintf "no raw spaces in frames of %S" line)
          true
          (not (String.contains stack ' ')))
    lines

(* ------------------------------------------------------------------ *)
(* Launcher plumbing: --profile must not move a single number          *)
(* ------------------------------------------------------------------ *)

let kernel_variants =
  Creator.generate
    (Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
       ~unroll:(1, 2) ~swap_after:false ())

let variant_u u = List.find (fun v -> v.Variant.unroll = u) kernel_variants

let quick_opts =
  {
    (Options.default cfg) with
    Options.array_bytes = 16 * 1024;
    repetitions = 2;
    experiments = 3;
  }

let test_profile_changes_no_numbers () =
  let launch opts =
    match Launcher.launch opts (Source.From_variant (variant_u 1)) with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let off = launch quick_opts in
  let on = launch { quick_opts with Options.profile = true } in
  check_bool "unprofiled run carries no breakdown" true
    (off.Report.profile = None);
  Alcotest.(check (float 0.))
    "reported value identical with profiling on" off.Report.value
    on.Report.value;
  check_bool "per-experiment series identical" true
    (off.Report.experiments = on.Report.experiments);
  match on.Report.profile with
  | None -> Alcotest.fail "profiled run must carry a breakdown"
  | Some b ->
    check_bool "breakdown attributes cycles" true
      (b.Mt_profile.total_cycles > 0.);
    check_int "all categories present" Attribution.categories
      (List.length b.Mt_profile.cats)

(* ------------------------------------------------------------------ *)
(* Snapshot schema 4 and diff localization                             *)
(* ------------------------------------------------------------------ *)

let stat ?(profile = []) key value =
  Mt_obsv.Snapshot.of_values ~key ~profile [| value |]

let snap variants =
  Mt_obsv.Snapshot.make ~created_at:0. ~kernel:("k", "kh") ~machine:("m", "mh")
    variants

let test_snapshot_profile_roundtrip () =
  let s =
    snap
      [
        stat ~profile:[ ("mem-L2", 0.625); ("frontend", 0.375) ] "a" 10.;
        stat "b" 20.;
      ]
  in
  match Mt_obsv.Snapshot.of_string (Mt_obsv.Snapshot.to_string s) with
  | Error msg -> Alcotest.fail msg
  | Ok loaded ->
    check_int "schema 4" 4 loaded.Mt_obsv.Snapshot.schema;
    (match loaded.Mt_obsv.Snapshot.variants with
    | [ a; b ] ->
      check_bool "profile survives the round trip" true
        (a.Mt_obsv.Snapshot.profile
        = [ ("mem-L2", 0.625); ("frontend", 0.375) ]);
      check_bool "unprofiled variant stays empty" true
        (b.Mt_obsv.Snapshot.profile = [])
    | _ -> Alcotest.fail "expected two variants")

let test_older_schema_loads_with_empty_profile () =
  (* A hand-written schema-3 document: no profile key anywhere. *)
  let doc =
    {|{"schema": 3, "tool": "mt_study", "variants":
       [{"key": "v", "median": 5.0}]}|}
  in
  match Mt_obsv.Snapshot.of_string doc with
  | Error msg -> Alcotest.fail msg
  | Ok s -> (
    match s.Mt_obsv.Snapshot.variants with
    | [ v ] ->
      check_bool "schema-3 variants load with an empty profile" true
        (v.Mt_obsv.Snapshot.profile = [])
    | _ -> Alcotest.fail "expected one variant")

let test_diff_localizes_regression () =
  let baseline =
    snap [ stat ~profile:[ ("port-alu", 0.45); ("mem-L2", 0.55) ] "v" 100. ]
  in
  let current =
    snap [ stat ~profile:[ ("port-alu", 0.375); ("mem-L2", 0.625) ] "v" 120. ]
  in
  let d = Mt_obsv.Diff.compare ~baseline current in
  (match d.Mt_obsv.Diff.entries with
  | [ e ] -> (
    check_bool "regression detected" true
      (e.Mt_obsv.Diff.verdict = Mt_obsv.Diff.Regression);
    match e.Mt_obsv.Diff.bottleneck with
    | None -> Alcotest.fail "regression with profiles must localize"
    | Some bn ->
      Alcotest.(check string)
        "blames the category whose cycles grew most" "mem-L2"
        bn.Mt_obsv.Diff.bn_category;
      (* mem-L2 went 55 -> 75 attributed cycles of a 20-cycle move. *)
      check_bool "fraction explains the move" true
        (Float.abs (bn.Mt_obsv.Diff.bn_fraction -. 1.0) < 1e-9))
  | _ -> Alcotest.fail "expected one entry");
  let rendered = Mt_obsv.Diff.render d in
  check_bool "render names the bottleneck" true
    (contains rendered "attributable to mem-L2 growth")

let test_diff_without_profiles_has_no_bottleneck () =
  let baseline = snap [ stat "v" 100. ] in
  let current = snap [ stat "v" 120. ] in
  let d = Mt_obsv.Diff.compare ~baseline current in
  match d.Mt_obsv.Diff.entries with
  | [ e ] ->
    check_bool "regression still detected" true
      (e.Mt_obsv.Diff.verdict = Mt_obsv.Diff.Regression);
    check_bool "no profiles, no localization" true
      (e.Mt_obsv.Diff.bottleneck = None)
  | _ -> Alcotest.fail "expected one entry"

let tests =
  [
    Alcotest.test_case "dependency chain dominates" `Quick
      test_dependency_chain_dominates;
    Alcotest.test_case "memory strides dominate" `Quick
      test_memory_strides_dominate;
    Alcotest.test_case "attribution accumulates across calls" `Quick
      test_attribution_accumulates_across_calls;
    Alcotest.test_case "critical path shape" `Quick test_critical_path_shape;
    Alcotest.test_case "golden corpus profiled" `Quick
      test_golden_corpus_profiled;
    QCheck_alcotest.to_alcotest prop_random_programs_profiled;
    Alcotest.test_case "breakdown shape" `Quick test_breakdown_shape;
    Alcotest.test_case "folded stack format" `Quick test_folded_format;
    Alcotest.test_case "--profile changes no numbers" `Quick
      test_profile_changes_no_numbers;
    Alcotest.test_case "snapshot profile round trip" `Quick
      test_snapshot_profile_roundtrip;
    Alcotest.test_case "older schema loads empty profile" `Quick
      test_older_schema_loads_with_empty_profile;
    Alcotest.test_case "diff localizes a regression" `Quick
      test_diff_localizes_regression;
    Alcotest.test_case "diff without profiles" `Quick
      test_diff_without_profiles_has_no_bottleneck;
  ]
