(* Tests for Mt_quality: stability metrics, verdict classification, the
   noise-monotonicity property and the adaptive experiment controller. *)

open Mt_machine
open Mt_creator
open Mt_launcher

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_float = Alcotest.(check (float 1e-9))

let x5650 = Config.nehalem_x5650_2s

let defaults = Options.default x5650

let kernel_variants =
  Creator.generate
    (Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
       ~unroll:(1, 2) ~swap_after:false ())

let variant_u u = List.find (fun v -> v.Variant.unroll = u) kernel_variants

let quick_opts =
  {
    defaults with
    Options.array_bytes = 16 * 1024;
    repetitions = 2;
    experiments = 3;
  }

let launch opts =
  match Launcher.launch opts (Source.From_variant (variant_u 1)) with
  | Ok report -> report
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

let test_verdict_string_round_trip () =
  let round v =
    match Mt_quality.verdict_of_string (Mt_quality.verdict_to_string v) with
    | Ok v' -> check_bool (Mt_quality.verdict_to_string v) true (v = v')
    | Error msg -> Alcotest.fail msg
  in
  round Mt_quality.Stable;
  round (Mt_quality.Noisy "cov 3.4% >= 2.0%");
  round (Mt_quality.Unstable "rciw 31.0% >= 25.0%");
  (match Mt_quality.verdict_of_string "noisy" with
  | Ok (Mt_quality.Noisy "") -> ()
  | _ -> Alcotest.fail "bare \"noisy\" should parse with an empty reason");
  check_bool "garbage rejected" true
    (Result.is_error (Mt_quality.verdict_of_string "fine, honestly"))

let test_verdict_rank_ordering () =
  check_int "stable" 0 (Mt_quality.verdict_rank Mt_quality.Stable);
  check_int "noisy" 1 (Mt_quality.verdict_rank (Mt_quality.Noisy "r"));
  check_int "unstable" 2 (Mt_quality.verdict_rank (Mt_quality.Unstable "r"))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_rciw_deterministic_and_bounded () =
  let xs = [| 10.; 10.4; 9.8; 10.1; 10.2; 9.9; 10.3; 10. |] in
  let a = Mt_quality.rciw ~seed:7 xs in
  check_float "same seed, same value" a (Mt_quality.rciw ~seed:7 xs);
  check_bool "positive on a dispersed series" true (a > 0.);
  (* The same shape scaled 50x wider around the same centre must yield
     a wider relative interval. *)
  let widen k = Array.map (fun x -> 10. +. (k *. (x -. 10.))) xs in
  check_bool "wider series, wider interval" true
    (Mt_quality.rciw ~seed:7 (widen 50.) > Mt_quality.rciw ~seed:7 (widen 1.));
  check_float "singleton" 0. (Mt_quality.rciw ~seed:7 [| 5. |]);
  check_float "zero median" 0. (Mt_quality.rciw ~seed:7 [| -1.; 0.; 1. |])

let test_outlier_detection () =
  let xs = [| 10.; 10.1; 9.9; 10.05; 9.95; 10.; 10.02; 50. |] in
  check_int "spike flagged" 1 (Mt_quality.outlier_count xs);
  check_int "tight series clean" 0
    (Mt_quality.outlier_count [| 10.; 10.1; 9.9; 10.05; 9.95 |]);
  (* A majority-constant series has MAD 0: no robust yardstick, no
     outliers by definition. *)
  check_int "degenerate mad" 0 (Mt_quality.outlier_count [| 3.; 3.; 3.; 9. |])

let test_warmup_excess () =
  check_float "cold head" 1.0 (Mt_quality.warmup_excess [| 2.; 1.; 1.; 1. |]);
  check_bool "warm head is not a trend" true
    (Mt_quality.warmup_excess [| 1.; 1.; 1.; 2. |] <= 0.);
  check_float "too short to call" 0. (Mt_quality.warmup_excess [| 2.; 1. |])

let test_assess_verdicts () =
  let tight = Mt_quality.assess [| 100.; 100.2; 99.9; 100.1; 100. |] in
  check_bool "tight series stable" true (Mt_quality.stable tight);
  (match (Mt_quality.assess [| 100.; 200.; 50.; 300.; 10. |]).Mt_quality.verdict with
  | Mt_quality.Unstable _ -> ()
  | v ->
    Alcotest.failf "wild series should be unstable, got %s"
      (Mt_quality.verdict_to_string v));
  check_bool "singleton stable by definition" true
    (Mt_quality.stable (Mt_quality.assess [| 42. |]))

let test_assess_flags_warmup_drift () =
  (* A 12% head over a flat tail: CoV stays under 2%, MAD is 0 (no
     outlier call), but the warm-up band (10%) is crossed. *)
  let series = Array.make 40 1.0 in
  series.(0) <- 1.12;
  let a = Mt_quality.assess series in
  check_bool "trend detected" true a.Mt_quality.warmup_trend;
  match a.Mt_quality.verdict with
  | Mt_quality.Noisy _ -> ()
  | v ->
    Alcotest.failf "warm-up drift should demote to noisy, got %s"
      (Mt_quality.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Noise monotonicity                                                  *)
(* ------------------------------------------------------------------ *)

(* The four machine environments ordered by noise amplitude.  With one
   seed the underlying SplitMix64 stall stream is identical across
   environments — only the amplitude scales — so the measured CoV is
   strictly increasing along this list. *)
let envs_ordered =
  [
    Noise.stable_env;
    { Noise.pinned = true; interrupts_masked = false; warmed = true };
    { Noise.pinned = false; interrupts_masked = true; warmed = true };
    Noise.hostile_env;
  ]

let perturbed_series ~seed env =
  let noise = Noise.create ~seed env in
  Array.init 24 (fun _ -> Noise.perturb noise 1000.)

(* Thresholds that put the CoV signal alone in charge, tuned so the
   quiet and hostile environments land in different bands (measured CoV
   is roughly amplitude x 0.3). *)
let cov_only =
  {
    Mt_quality.default_thresholds with
    Mt_quality.cov_noisy = 0.004;
    cov_unstable = 0.02;
    rciw_noisy = 10.;
    rciw_unstable = 20.;
    outlier_fraction = 2.;
    warmup_band = 10.;
  }

let env_rank ~seed env =
  Mt_quality.verdict_rank
    (Mt_quality.assess ~thresholds:cov_only ~seed:1 (perturbed_series ~seed env))
      .Mt_quality.verdict

let test_noise_envs_span_ranks () =
  (* The property below must not pass vacuously: the quiet environment
     really is stable and the hostile one really degrades. *)
  check_int "stable env" 0 (env_rank ~seed:42 Noise.stable_env);
  check_bool "hostile env degrades" true
    (env_rank ~seed:42 Noise.hostile_env > 0)

let prop_verdicts_degrade_with_noise =
  QCheck.Test.make ~count:100
    ~name:"quality: verdict rank never improves as noise amplitude grows"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let amplitudes = List.map Noise.relative_amplitude envs_ordered in
      let ranks = List.map (env_rank ~seed) envs_ordered in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      non_decreasing amplitudes && non_decreasing ranks)

(* ------------------------------------------------------------------ *)
(* Adaptive experiment controller                                      *)
(* ------------------------------------------------------------------ *)

let test_adaptive_stops_before_budget () =
  let opts =
    {
      quick_opts with
      Options.adaptive_experiments = true;
      experiments = 3;
      max_experiments = 32;
      rciw_target = 0.05;
    }
  in
  let r = launch opts in
  let n = Array.length r.Report.experiments in
  check_bool "stable series stops well before the ceiling" true (n < 32);
  check_int "but never below the configured minimum" 3 n

let test_adaptive_exhausts_budget_on_impossible_target () =
  let opts =
    {
      quick_opts with
      Options.adaptive_experiments = true;
      experiments = 3;
      max_experiments = 8;
      rciw_target = 1e-9;
      pinned = false (* noisy environment: the interval never collapses *);
    }
  in
  let r = launch opts in
  check_int "ran to the ceiling" 8 (Array.length r.Report.experiments)

let test_adaptive_records_telemetry () =
  let tel = Mt_telemetry.create () in
  Mt_telemetry.set_global tel;
  Fun.protect
    ~finally:(fun () -> Mt_telemetry.set_global Mt_telemetry.disabled)
    (fun () ->
      ignore
        (launch
           {
             quick_opts with
             Options.adaptive_experiments = true;
             max_experiments = 32;
             rciw_target = 0.05;
           });
      let counters = Mt_telemetry.counters tel in
      check_bool "early stop counted" true
        (List.mem_assoc "quality.adaptive.early_stops" counters);
      check_bool "verdict counted" true
        (List.exists
           (fun (k, _) ->
             String.length k > 16 && String.sub k 0 16 = "quality.verdict.")
           counters))

(* ------------------------------------------------------------------ *)
(* Warm-up detector x drop_first_experiment                            *)
(* ------------------------------------------------------------------ *)

let test_drop_first_clears_warmup_trend () =
  (* A pure-load kernel at one repetition per experiment: skipping the
     heating call leaves the cold misses entirely in experiment 1. *)
  let cold_variant =
    match Creator.generate (Mt_kernels.Streams.movss_unrolled_spec ~unroll:2 ()) with
    | [ v ] -> v
    | _ -> Alcotest.fail "expected a single movss variant"
  in
  let launch opts =
    match Launcher.launch opts (Source.From_variant cold_variant) with
    | Ok report -> report
    | Error msg -> Alcotest.fail msg
  in
  let cold =
    { quick_opts with Options.warmup = false; repetitions = 1; experiments = 6 }
  in
  let r = launch cold in
  check_bool "cold start leaves a warm-up trend" true
    r.Report.quality.Mt_quality.warmup_trend;
  let r' = launch { cold with Options.drop_first_experiment = true } in
  check_bool "dropping the first experiment clears it" false
    r'.Report.quality.Mt_quality.warmup_trend;
  check_bool "and never worsens the verdict" true
    (Mt_quality.verdict_rank r'.Report.quality.Mt_quality.verdict
    <= Mt_quality.verdict_rank r.Report.quality.Mt_quality.verdict)

let tests =
  [
    Alcotest.test_case "verdict strings round-trip" `Quick
      test_verdict_string_round_trip;
    Alcotest.test_case "verdict rank ordering" `Quick test_verdict_rank_ordering;
    Alcotest.test_case "rciw is deterministic and scales with spread" `Quick
      test_rciw_deterministic_and_bounded;
    Alcotest.test_case "outlier detection" `Quick test_outlier_detection;
    Alcotest.test_case "warm-up excess" `Quick test_warmup_excess;
    Alcotest.test_case "assess classifies tight, wild and singleton series"
      `Quick test_assess_verdicts;
    Alcotest.test_case "assess flags warm-up drift" `Quick
      test_assess_flags_warmup_drift;
    Alcotest.test_case "noise environments span verdict ranks" `Quick
      test_noise_envs_span_ranks;
    QCheck_alcotest.to_alcotest prop_verdicts_degrade_with_noise;
    Alcotest.test_case "adaptive controller stops early on a stable series"
      `Quick test_adaptive_stops_before_budget;
    Alcotest.test_case "adaptive controller respects the budget ceiling" `Quick
      test_adaptive_exhausts_budget_on_impossible_target;
    Alcotest.test_case "adaptive decisions land in telemetry" `Quick
      test_adaptive_records_telemetry;
    Alcotest.test_case "drop_first_experiment clears the warm-up trend" `Quick
      test_drop_first_clears_warmup_trend;
  ]
