(* Machine-description files, plus calibration regression: golden
   values pinning the reproduced figures against accidental model
   drift.  Tolerances are loose enough for harmless refactoring and
   tight enough to catch a broken mechanism. *)

open Mt_machine
open Mt_creator
open Mt_launcher

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let x5650 = Config.nehalem_x5650_2s

let within name expected tolerance actual =
  if Float.abs (actual -. expected) > tolerance *. expected then
    Alcotest.failf "%s: expected %.3f +/- %.0f%%, got %.3f" name expected
      (tolerance *. 100.) actual

(* ------------------------------------------------------------------ *)
(* Config_io                                                           *)
(* ------------------------------------------------------------------ *)

let test_config_roundtrip_presets () =
  List.iter
    (fun (name, cfg) ->
      match Config_io.of_string (Config_io.to_string cfg) with
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
      | Ok again ->
        (* Feature flags and energy are not serialized; compare the
           serialized forms instead. *)
        Alcotest.(check string) name (Config_io.to_string cfg)
          (Config_io.to_string again))
    Config.presets

let test_config_file_overrides_base () =
  let xml =
    {|<machine name="fat_l3" base="sandy_bridge_e31240">
        <cache level="l3" size_kb="20480"/>
        <dram socket_bandwidth_gbps="25"/>
      </machine>|}
  in
  match Config_io.of_string xml with
  | Error msg -> Alcotest.fail msg
  | Ok cfg ->
    Alcotest.(check string) "name" "fat_l3" cfg.Config.name;
    check_int "l3 grew" (20480 * 1024) cfg.Config.l3.Config.size_bytes;
    check_bool "bandwidth grew" true (cfg.Config.socket_bandwidth_gbps = 25.);
    (* Untouched fields keep the base's values. *)
    check_int "cores from base" 4 (Config.core_count cfg)

let test_config_file_rejects_bad () =
  let bad xml =
    check_bool xml true (Result.is_error (Config_io.of_string xml))
  in
  bad "<notmachine/>";
  bad {|<machine base="nope"/>|};
  bad {|<machine><clock nominal_ghz="zero"/></machine>|};
  bad {|<machine><cache size_kb="32"/></machine>|};
  bad {|<machine><cache level="l9" size_kb="32"/></machine>|};
  (* Validation catches semantic nonsense. *)
  bad {|<machine><clock nominal_ghz="0"/></machine>|};
  bad {|<machine><core load_ports="0"/></machine>|}

let test_custom_machine_changes_measurement () =
  (* A machine with half the DRAM bandwidth streams proportionally
     slower. *)
  let slow_xml =
    {|<machine name="slow_dram" base="nehalem_x5650_2s">
        <dram socket_bandwidth_gbps="6" interleaved="false" miss_parallelism="2"/>
      </machine>|}
  in
  let slow =
    match Config_io.of_string slow_xml with
    | Ok cfg -> cfg
    | Error msg -> Alcotest.fail msg
  in
  let variant =
    match
      Creator.generate
        (Mt_kernels.Streams.loadstore_spec ~unroll:(8, 8) ~swap_after:false ())
    with
    | [ v ] -> v
    | _ -> Alcotest.fail "variant"
  in
  let value cfg =
    let opts =
      {
        (Options.default cfg) with
        Options.per = Options.Per_instruction;
        array_bytes = 1024 * 1024;
        warmup = false;
        repetitions = 1;
        experiments = 1;
      }
    in
    match Launcher.launch opts (Source.From_variant variant) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  check_bool "half bandwidth, about double cost" true
    (value slow > value x5650 *. 1.7)

(* ------------------------------------------------------------------ *)
(* Calibration goldens (the published shapes)                          *)
(* ------------------------------------------------------------------ *)

let stream_value ?(machine = x5650) ?(cold = false) ~opcode ~unroll ~bytes () =
  let variant =
    match
      Creator.generate
        (Mt_kernels.Streams.loadstore_spec ~opcode
           ~stride:(Mt_isa.Semantics.data_bytes (Mt_isa.Insn.make opcode []))
           ~unroll:(unroll, unroll) ~swap_after:false ())
    with
    | [ v ] -> v
    | _ -> Alcotest.fail "variant"
  in
  let opts =
    {
      (Options.default machine) with
      Options.per = Options.Per_instruction;
      array_bytes = bytes;
      warmup = not cold;
      repetitions = (if cold then 1 else 2);
      experiments = (if cold then 1 else 2);
    }
  in
  match Launcher.launch opts (Source.From_variant variant) with
  | Ok r -> r.Report.value
  | Error msg -> Alcotest.fail msg

let test_golden_movaps_l1 () =
  within "movaps x8 L1" 1.00
    0.05
    (stream_value ~opcode:Mt_isa.Insn.MOVAPS ~unroll:8 ~bytes:(16 * 1024) ())

let test_golden_movaps_l3 () =
  within "movaps x8 L3 (bandwidth-bound)" 1.60 0.08
    (stream_value ~opcode:Mt_isa.Insn.MOVAPS ~unroll:8 ~bytes:(512 * 1024) ())

let test_golden_movaps_ram () =
  within "movaps x8 cold RAM" 5.54 0.08
    (stream_value ~cold:true ~opcode:Mt_isa.Insn.MOVAPS ~unroll:8
       ~bytes:(1024 * 1024) ())

let test_golden_movss_ram () =
  within "movss x8 cold RAM" 1.39 0.08
    (stream_value ~cold:true ~opcode:Mt_isa.Insn.MOVSS ~unroll:8
       ~bytes:(1024 * 1024) ())

let test_golden_fork_knee () =
  (* The Fig. 14 signature: flat through 6 cores, 2x at 12. *)
  let variant =
    match
      Creator.generate
        (Mt_kernels.Streams.loadstore_spec ~unroll:(8, 8) ~swap_after:false ())
    with
    | [ v ] -> v
    | _ -> Alcotest.fail "variant"
  in
  let value cores =
    let opts =
      {
        (Options.default x5650) with
        Options.array_bytes = 1024 * 1024;
        warmup = false;
        repetitions = 1;
        experiments = 1;
        cores;
      }
    in
    match Launcher.launch opts (Source.From_variant variant) with
    | Ok r -> r.Report.value
    | Error msg -> Alcotest.fail msg
  in
  let v1 = value 1 and v6 = value 6 and v12 = value 12 in
  check_bool "flat to 6" true (v6 < v1 *. 1.05);
  within "12 cores = 2x the 6-core cost" 2.0 0.10 (v12 /. v6)

let test_golden_matmul_cliff_location () =
  (* The cliff is between 500 and 600 — the page-stride boundary. *)
  let cycles n =
    match
      Mt_kernels.Matmul.make_driver ~machine:x5650 ~n (`Original 1)
    with
    | Error msg -> Alcotest.fail msg
    | Ok d -> (
      match Mt_kernels.Matmul.sample_run ~rows:1 ~cols:8 ~warm_cols:8 d with
      | Ok s -> s.Mt_kernels.Matmul.cycles_per_iteration
      | Error msg -> Alcotest.fail msg)
  in
  let at_500 = cycles 500 and at_600 = cycles 600 in
  check_bool "500 still fast" true (at_500 < 12.);
  check_bool "600 over the cliff" true (at_600 > 2. *. at_500)

let test_golden_rdtsc_invariance () =
  (* Fig. 13: cold RAM per-load in TSC cycles is clock-invariant. *)
  let value freq =
    stream_value
      ~machine:(Config.with_core_ghz x5650 freq)
      ~cold:true ~opcode:Mt_isa.Insn.MOVAPS ~unroll:8 ~bytes:(1024 * 1024) ()
  in
  within "RAM tsc-cycles invariant across clocks" 1.0 0.03
    (value 1.6 /. value 2.67)

let test_golden_generation_counts () =
  check_int "510" 510
    (List.length (Creator.generate (Mt_kernels.Streams.loadstore_spec ())));
  check_int "2040" 2040
    (List.length (Creator.generate (Mt_kernels.Streams.move_width_spec ())))

let tests =
  [
    Alcotest.test_case "config round-trips presets" `Quick test_config_roundtrip_presets;
    Alcotest.test_case "config file overrides base" `Quick test_config_file_overrides_base;
    Alcotest.test_case "config file rejects bad input" `Quick test_config_file_rejects_bad;
    Alcotest.test_case "custom machine changes measurement" `Quick test_custom_machine_changes_measurement;
    Alcotest.test_case "golden: movaps L1" `Quick test_golden_movaps_l1;
    Alcotest.test_case "golden: movaps L3" `Quick test_golden_movaps_l3;
    Alcotest.test_case "golden: movaps RAM" `Quick test_golden_movaps_ram;
    Alcotest.test_case "golden: movss RAM" `Quick test_golden_movss_ram;
    Alcotest.test_case "golden: fork knee" `Quick test_golden_fork_knee;
    Alcotest.test_case "golden: matmul cliff location" `Slow test_golden_matmul_cliff_location;
    Alcotest.test_case "golden: rdtsc invariance" `Quick test_golden_rdtsc_invariance;
    Alcotest.test_case "golden: generation counts" `Quick test_golden_generation_counts;
  ]
