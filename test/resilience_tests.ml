(* Tests for the resilience layer: deterministic backoff, fault-spec
   parsing, the supervisor's retry/quarantine matrix, the checkpoint
   journal (including torn final lines), cache decode recovery, and
   journal resume producing byte-identical study output. *)

open Mt_machine
open Mt_launcher
module Policy = Mt_resilience.Policy
module Fault = Mt_resilience.Fault
module Supervisor = Mt_resilience.Supervisor
module Journal = Mt_resilience.Journal

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* A policy whose sleeps cost nothing, for fast retry-path tests. *)
let instant ?(retries = 1) ?wall_budget_s () =
  Policy.make ~retries ~backoff_base_s:0. ~backoff_jitter:0. ?wall_budget_s ()

(* ------------------------------------------------------------------ *)
(* Policy: deterministic backoff                                       *)
(* ------------------------------------------------------------------ *)

let prop_backoff_deterministic_and_bounded =
  (* Same (seed, key, attempt) -> same delay, and the delay sits in
     [base * 2^(a-1), base * 2^(a-1) * (1 + jitter)] when the cap is
     out of reach. *)
  QCheck.Test.make ~count:300
    ~name:"backoff: deterministic and within the jitter envelope"
    QCheck.(pair string (int_range 1 8))
    (fun (key, attempt) ->
      let p =
        Policy.make ~retries:8 ~backoff_base_s:0.004 ~backoff_max_s:1e9
          ~backoff_jitter:0.5 ~backoff_seed:7 ()
      in
      let d1 = Policy.delay p ~key ~attempt in
      let d2 = Policy.delay p ~key ~attempt in
      let raw = 0.004 *. (2. ** float_of_int (attempt - 1)) in
      d1 = d2 && d1 >= raw && d1 <= raw *. 1.5)

let test_backoff_no_jitter_exact () =
  let p =
    Policy.make ~backoff_base_s:0.002 ~backoff_jitter:0. ~backoff_max_s:1e9 ()
  in
  Alcotest.(check (float 1e-12)) "attempt 1" 0.002 (Policy.delay p ~key:"k" ~attempt:1);
  Alcotest.(check (float 1e-12)) "attempt 3" 0.008 (Policy.delay p ~key:"k" ~attempt:3)

let test_backoff_capped () =
  let p = Policy.make ~backoff_base_s:1.0 ~backoff_max_s:0.25 () in
  check_bool "cap holds" true (Policy.delay p ~key:"k" ~attempt:6 <= 0.25)

let test_backoff_seed_matters () =
  let delay seed =
    Policy.delay
      (Policy.make ~backoff_base_s:1.0 ~backoff_jitter:1.0 ~backoff_max_s:1e9
         ~backoff_seed:seed ())
      ~key:"k" ~attempt:1
  in
  (* 64 seeds all colliding would mean the seed is ignored. *)
  let distinct =
    List.sort_uniq compare (List.init 64 delay) |> List.length
  in
  check_bool "seeds spread the jitter" true (distinct > 1)

(* ------------------------------------------------------------------ *)
(* Fault specs                                                         *)
(* ------------------------------------------------------------------ *)

let test_fault_spec_parse () =
  (match Fault.of_spec "variant=0:raise" with
  | Ok { Fault.index = 0; kind = Fault.Raise; times = None } -> ()
  | _ -> Alcotest.fail "variant=0:raise");
  (match Fault.of_spec "variant=3:timeout@1" with
  | Ok { Fault.index = 3; kind = Fault.Timeout; times = Some 1 } -> ()
  | _ -> Alcotest.fail "variant=3:timeout@1");
  (match Fault.of_spec "variant=2:corrupt-cache-entry" with
  | Ok { Fault.index = 2; kind = Fault.Corrupt_cache_entry; times = None } -> ()
  | _ -> Alcotest.fail "variant=2:corrupt-cache-entry");
  List.iter
    (fun bad ->
      match Fault.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" bad))
    [ ""; "variant=:raise"; "variant=1:explode"; "variant=x:raise"; "1:raise" ]

let test_fault_spec_round_trip () =
  List.iter
    (fun spec ->
      match Fault.of_spec spec with
      | Error msg -> Alcotest.fail msg
      | Ok f -> check_string "round trip" spec (Fault.to_spec f))
    [ "variant=0:raise"; "variant=3:timeout@1"; "variant=2:corrupt-cache-entry" ]

let test_fault_fires () =
  let once = Fault.make ~times:1 ~index:0 Fault.Raise in
  check_bool "fires on 1" true (Fault.fires once ~attempt:1);
  check_bool "quiet on 2" false (Fault.fires once ~attempt:2);
  let always = Fault.make ~index:0 Fault.Raise in
  check_bool "always fires" true (Fault.fires always ~attempt:5)

(* ------------------------------------------------------------------ *)
(* Supervisor: retry / quarantine matrix                               *)
(* ------------------------------------------------------------------ *)

let test_supervise_success_first_try () =
  match Supervisor.supervise ~policy:(instant ()) ~key:"k" (fun () -> 42) with
  | Supervisor.Done (42, 1) -> ()
  | _ -> Alcotest.fail "expected Done (42, 1)"

let test_supervise_retry_then_succeed () =
  let attempts = ref 0 in
  match
    Supervisor.supervise ~policy:(instant ~retries:2 ()) ~key:"k" (fun () ->
        incr attempts;
        if !attempts < 2 then failwith "flaky" else "ok")
  with
  | Supervisor.Done ("ok", 2) -> check_int "two attempts" 2 !attempts
  | _ -> Alcotest.fail "expected success on attempt 2"

let test_supervise_retries_exhausted () =
  match
    Supervisor.supervise ~policy:(instant ~retries:2 ()) ~key:"k" (fun () ->
        failwith "always broken")
  with
  | Supervisor.Quarantined q ->
    check_string "kind" "raise" q.Supervisor.kind;
    check_int "attempts = 1 + retries" 3 q.Supervisor.attempts;
    check_bool "detail carries the exception" true
      (let msg = q.Supervisor.detail in
       String.length msg >= 6)
  | Supervisor.Done _ -> Alcotest.fail "expected quarantine"

let test_supervise_error_value_flows_through () =
  (* An Error *value* is a measurement result, not a crash: no retry. *)
  let attempts = ref 0 in
  match
    Supervisor.supervise ~policy:(instant ~retries:3 ()) ~key:"k" (fun () ->
        incr attempts;
        (Error "bad kernel" : (int, string) result))
  with
  | Supervisor.Done (Error "bad kernel", 1) -> check_int "no retries" 1 !attempts
  | _ -> Alcotest.fail "expected the Error value on attempt 1"

let test_supervise_injected_raise_then_recover () =
  (* Fault on the first attempt only: the retry must succeed. *)
  let fault = Fault.make ~times:1 ~index:0 Fault.Raise in
  match
    Supervisor.supervise ~fault ~policy:(instant ()) ~key:"k" (fun () -> 7)
  with
  | Supervisor.Done (7, 2) -> ()
  | _ -> Alcotest.fail "expected recovery on attempt 2"

let test_supervise_injected_raise_exhausts () =
  let fault = Fault.make ~index:0 Fault.Raise in
  match
    Supervisor.supervise ~fault ~policy:(instant ~retries:1 ()) ~key:"k"
      (fun () -> 7)
  with
  | Supervisor.Quarantined q ->
    check_string "kind" "raise" q.Supervisor.kind;
    check_int "attempts" 2 q.Supervisor.attempts
  | Supervisor.Done _ -> Alcotest.fail "expected quarantine"

let test_supervise_injected_timeout () =
  let fault = Fault.make ~index:0 Fault.Timeout in
  match
    Supervisor.supervise ~fault
      ~policy:(instant ~retries:0 ~wall_budget_s:60. ())
      ~key:"k" (fun () -> 7)
  with
  | Supervisor.Quarantined q -> check_string "kind" "timeout" q.Supervisor.kind
  | Supervisor.Done _ -> Alcotest.fail "expected a timeout quarantine"

let test_supervise_wall_budget_post_hoc () =
  (* A real (not injected) over-budget attempt: the budget is checked
     after the attempt returns, so even a successful value is discarded
     as hung. *)
  match
    Supervisor.supervise
      ~policy:(instant ~retries:0 ~wall_budget_s:1e-9 ())
      ~key:"k"
      (fun () -> Unix.sleepf 0.002)
  with
  | Supervisor.Quarantined q -> check_string "kind" "timeout" q.Supervisor.kind
  | Supervisor.Done _ -> Alcotest.fail "expected a timeout quarantine"

let test_quarantine_to_string () =
  let q = { Supervisor.kind = "raise"; detail = "boom"; attempts = 3 } in
  check_string "rendering" "quarantined (raise) after 3 attempts: boom"
    (Supervisor.quarantine_to_string q)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let temp_path () =
  Filename.temp_file "mt-journal-test" ".jsonl"

let test_journal_round_trip () =
  let path = temp_path () in
  let w = Journal.create path in
  Journal.record w ~key:"k1" ~id:"v1" ~data:"\x00binary\xffpayload";
  Journal.record w ~key:"k2" ~id:"v2" ~data:"";
  Journal.close w;
  (match Journal.load path with
  | Error msg -> Alcotest.fail msg
  | Ok entries ->
    check_int "two entries" 2 (List.length entries);
    (match Journal.find entries ~key:"k1" with
    | Some e ->
      check_string "id" "v1" e.Journal.id;
      check_string "binary data survives" "\x00binary\xffpayload" e.Journal.data
    | None -> Alcotest.fail "k1 missing"));
  Sys.remove path

let test_journal_last_record_wins () =
  let path = temp_path () in
  let w = Journal.create path in
  Journal.record w ~key:"k" ~id:"v" ~data:"old";
  Journal.record w ~key:"k" ~id:"v" ~data:"new";
  Journal.close w;
  (match Journal.load path with
  | Error msg -> Alcotest.fail msg
  | Ok entries -> (
    match Journal.find entries ~key:"k" with
    | Some e -> check_string "later record wins" "new" e.Journal.data
    | None -> Alcotest.fail "k missing"));
  Sys.remove path

let test_journal_torn_line_dropped () =
  let path = temp_path () in
  let w = Journal.create path in
  Journal.record w ~key:"k1" ~id:"v1" ~data:"whole";
  Journal.close w;
  (* Simulate a crash mid-write: a final line cut off in the middle. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"key\": \"k2\", \"id\": \"v2\", \"da";
  close_out oc;
  (match Journal.load path with
  | Error msg -> Alcotest.fail msg
  | Ok entries ->
    check_int "torn line dropped" 1 (List.length entries);
    check_bool "whole line kept" true (Journal.find entries ~key:"k1" <> None));
  Sys.remove path

let test_journal_append_mode () =
  let path = temp_path () in
  let w = Journal.create path in
  Journal.record w ~key:"k1" ~id:"v1" ~data:"a";
  Journal.close w;
  let w = Journal.create ~append:true path in
  Journal.record w ~key:"k2" ~id:"v2" ~data:"b";
  Journal.close w;
  (match Journal.load path with
  | Error msg -> Alcotest.fail msg
  | Ok entries -> check_int "both survive" 2 (List.length entries));
  Sys.remove path

let test_journal_load_missing () =
  match Journal.load "/nonexistent/mt-journal.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an Error for a missing file"

(* ------------------------------------------------------------------ *)
(* Study integration                                                   *)
(* ------------------------------------------------------------------ *)

let x5650 = Config.nehalem_x5650_2s

let quick_opts =
  {
    (Options.default x5650) with
    Options.array_bytes = 16 * 1024;
    repetitions = 1;
    experiments = 2;
  }

(* 2 + 4 + 8 = 14 variants: big enough to exercise sharding, small
   enough to stay quick. *)
let small_spec =
  Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
    ~unroll:(1, 3) ()

let config_with ?cache ?(faults = []) ?journal_out ?resume_from () =
  let open Microtools.Study.Run_config in
  default |> with_cache cache |> with_faults faults
  |> with_policy (instant ~retries:0 ())
  |> with_journal journal_out |> with_resume resume_from

let test_study_fault_quarantines_not_aborts () =
  let study = Microtools.Study.create small_spec quick_opts in
  let n = List.length (Microtools.Study.variants study) in
  let config = config_with ~faults:[ Fault.make ~index:0 Fault.Raise ] () in
  let outcomes = Microtools.Study.run ~config study in
  check_int "every variant reports" n (List.length outcomes);
  let quarantined = Microtools.Study.quarantined outcomes in
  check_int "exactly one quarantine" 1 (List.length quarantined);
  check_int "siblings all succeed" (n - 1)
    (List.length (Microtools.Study.successes outcomes));
  (* The CSV carries the quarantine flag for exactly that variant. *)
  let csv = Mt_stats.Csv.to_string (Microtools.Study.csv outcomes) in
  check_bool "flag in CSV" true
    (let needle = "quarantined:raise" in
     let rec go i =
       i + String.length needle <= String.length csv
       && (String.sub csv i (String.length needle) = needle || go (i + 1))
     in
     go 0);
  (* ... and the snapshot lists it (schema 3). *)
  let snap = Microtools.Study.snapshot study outcomes in
  check_int "snapshot quarantined list" 1
    (List.length snap.Mt_obsv.Snapshot.quarantined)

let test_study_retry_masks_transient_fault () =
  let study = Microtools.Study.create small_spec quick_opts in
  let n = List.length (Microtools.Study.variants study) in
  let config =
    let open Microtools.Study.Run_config in
    config_with ~faults:[ Fault.make ~times:1 ~index:0 Fault.Raise ] ()
    |> with_policy (instant ~retries:1 ())
  in
  let outcomes = Microtools.Study.run ~config study in
  check_int "no quarantine" 0
    (List.length (Microtools.Study.quarantined outcomes));
  check_int "all succeed" n (List.length (Microtools.Study.successes outcomes))

let test_study_corrupt_cache_recovers () =
  let cache = Mt_parallel.Cache.create () in
  let study = Microtools.Study.create small_spec quick_opts in
  let n = List.length (Microtools.Study.variants study) in
  let config =
    config_with ~cache
      ~faults:[ Fault.make ~index:0 Fault.Corrupt_cache_entry ]
      ()
  in
  let outcomes = Microtools.Study.run ~config study in
  check_int "all succeed despite the corrupt entry" n
    (List.length (Microtools.Study.successes outcomes));
  check_bool "decode failure was counted" true
    (Mt_parallel.Cache.decode_failures cache >= 1)

let baseline_csv study =
  Mt_stats.Csv.to_string
    (Microtools.Study.csv (Microtools.Study.run ~config:(config_with ()) study))

let test_study_journal_resume_byte_identical () =
  let study = Microtools.Study.create small_spec quick_opts in
  let baseline = baseline_csv study in
  let journal = temp_path () in
  (* First run: journal everything. *)
  let first =
    Microtools.Study.run ~config:(config_with ~journal_out:journal ()) study
  in
  check_int "fresh run resumes nothing" 0
    (Microtools.Study.resumed_count first);
  (* Simulate a crash: keep only the first half of the journal, plus a
     torn final line. *)
  let lines =
    let ic = open_in_bin journal in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  let keep = List.filteri (fun i _ -> i < List.length lines / 2) lines in
  let oc = open_out_bin journal in
  List.iter (fun l -> output_string oc (l ^ "\n")) keep;
  output_string oc "{\"key\": \"torn";
  close_out oc;
  (* Resume: only the missing variants are re-measured, the journal is
     extended in place, and the CSV is byte-identical. *)
  let resumed =
    Microtools.Study.run
      ~config:(config_with ~journal_out:journal ~resume_from:journal ())
      study
  in
  check_int "resumed exactly the surviving half" (List.length keep)
    (Microtools.Study.resumed_count resumed);
  check_string "resumed CSV is byte-identical" baseline
    (Mt_stats.Csv.to_string (Microtools.Study.csv resumed));
  (* The extended journal now covers the whole study: a second resume
     re-measures nothing. *)
  let again =
    Microtools.Study.run
      ~config:(config_with ~journal_out:journal ~resume_from:journal ())
      study
  in
  check_int "second resume replays everything"
    (List.length (Microtools.Study.variants study))
    (Microtools.Study.resumed_count again);
  check_string "still byte-identical" baseline
    (Mt_stats.Csv.to_string (Microtools.Study.csv again));
  Sys.remove journal

let test_study_quarantine_journals_and_resumes () =
  (* A quarantined variant is checkpointed too: the resumed run replays
     the quarantine verdict instead of re-measuring the poison pill. *)
  let study = Microtools.Study.create small_spec quick_opts in
  let journal = temp_path () in
  let faults = [ Fault.make ~index:0 Fault.Raise ] in
  let first =
    Microtools.Study.run
      ~config:(config_with ~faults ~journal_out:journal ())
      study
  in
  let csv_first = Mt_stats.Csv.to_string (Microtools.Study.csv first) in
  (* Resume with the fault list cleared: index 0 must come back
     quarantined from the journal, not freshly measured. *)
  let resumed =
    Microtools.Study.run ~config:(config_with ~resume_from:journal ()) study
  in
  check_int "everything replayed"
    (List.length (Microtools.Study.variants study))
    (Microtools.Study.resumed_count resumed);
  check_string "quarantine verdict survives the journal" csv_first
    (Mt_stats.Csv.to_string (Microtools.Study.csv resumed));
  check_int "still one quarantine" 1
    (List.length (Microtools.Study.quarantined resumed));
  Sys.remove journal

(* Run_config is the only way to shape a run now (run_legacy is gone);
   with_plan is the newest knob — a plan dropping all but one variant
   must prune the run without disturbing the survivor's measurement. *)
let test_run_config_with_plan () =
  let study = Microtools.Study.create small_spec quick_opts in
  let full = Microtools.Study.run ~config:(config_with ()) study in
  match
    List.map
      (fun (o : Microtools.Study.outcome) ->
        Mt_creator.Variant.id o.Microtools.Study.variant)
      full
  with
  | [] | [ _ ] -> Alcotest.fail "expected several variants"
  | first :: rest ->
    let plan =
      {
        Mt_optimize.Plan.schema = Mt_optimize.Plan.schema_version;
        created_at = 0.;
        history_dir = "";
        runs = 0;
        kernel_name = "test";
        kernel_hash = "";
        machine_name = "test";
        machine_hash = "";
        knobs = Mt_optimize.Optimizer.default_knobs;
        keep =
          [
            {
              Mt_optimize.Plan.variant = first;
              experiments = None;
              stable = true;
              cov = 0.;
              rciw = 0.;
              trend = "stationary";
            };
          ];
        drop =
          List.map
            (fun v ->
              { Mt_optimize.Plan.variant = v; canary = first; correlation = 1. })
            rest;
      }
    in
    let config =
      Microtools.Study.Run_config.with_plan (Some plan) (config_with ())
    in
    let pruned = Microtools.Study.run ~config study in
    check_int "plan prunes to one variant" 1 (List.length pruned);
    (match (pruned, full) with
    | [ p ], f :: _ ->
      check_string "survivor is the planned variant" first
        (Mt_creator.Variant.id p.Microtools.Study.variant);
      check_bool "survivor's measurement is undisturbed" true
        (match (p.Microtools.Study.result, f.Microtools.Study.result) with
        | Ok a, Ok b ->
          a.Mt_launcher.Report.value = b.Mt_launcher.Report.value
        | _ -> false)
    | _ -> Alcotest.fail "unexpected outcome shape")

let tests =
  [
    QCheck_alcotest.to_alcotest prop_backoff_deterministic_and_bounded;
    Alcotest.test_case "backoff exact without jitter" `Quick
      test_backoff_no_jitter_exact;
    Alcotest.test_case "backoff cap" `Quick test_backoff_capped;
    Alcotest.test_case "backoff seed matters" `Quick test_backoff_seed_matters;
    Alcotest.test_case "fault spec parses" `Quick test_fault_spec_parse;
    Alcotest.test_case "fault spec round-trips" `Quick
      test_fault_spec_round_trip;
    Alcotest.test_case "fault fires per attempt" `Quick test_fault_fires;
    Alcotest.test_case "supervise: first-try success" `Quick
      test_supervise_success_first_try;
    Alcotest.test_case "supervise: retry then succeed" `Quick
      test_supervise_retry_then_succeed;
    Alcotest.test_case "supervise: retries exhausted" `Quick
      test_supervise_retries_exhausted;
    Alcotest.test_case "supervise: Error value not retried" `Quick
      test_supervise_error_value_flows_through;
    Alcotest.test_case "supervise: injected raise recovers" `Quick
      test_supervise_injected_raise_then_recover;
    Alcotest.test_case "supervise: injected raise exhausts" `Quick
      test_supervise_injected_raise_exhausts;
    Alcotest.test_case "supervise: injected timeout" `Quick
      test_supervise_injected_timeout;
    Alcotest.test_case "supervise: wall budget post hoc" `Quick
      test_supervise_wall_budget_post_hoc;
    Alcotest.test_case "quarantine rendering" `Quick test_quarantine_to_string;
    Alcotest.test_case "journal round-trip" `Quick test_journal_round_trip;
    Alcotest.test_case "journal last record wins" `Quick
      test_journal_last_record_wins;
    Alcotest.test_case "journal drops torn final line" `Quick
      test_journal_torn_line_dropped;
    Alcotest.test_case "journal append mode" `Quick test_journal_append_mode;
    Alcotest.test_case "journal load missing file" `Quick
      test_journal_load_missing;
    Alcotest.test_case "study: fault quarantines, not aborts" `Quick
      test_study_fault_quarantines_not_aborts;
    Alcotest.test_case "study: retry masks transient fault" `Quick
      test_study_retry_masks_transient_fault;
    Alcotest.test_case "study: corrupt cache entry recovers" `Quick
      test_study_corrupt_cache_recovers;
    Alcotest.test_case "study: journal resume byte-identical" `Slow
      test_study_journal_resume_byte_identical;
    Alcotest.test_case "study: quarantine journals and resumes" `Quick
      test_study_quarantine_journals_and_resumes;
    Alcotest.test_case "Run_config with_plan prunes" `Quick
      test_run_config_with_plan;
  ]
