(* Tests for the mt_serve stack: wire-protocol codecs, the bounded job
   queue's typed back-pressure, and an in-process daemon end to end —
   including the byte-identity guarantee between a streamed CSV and the
   one-shot Study.csv document. *)

open Mt_serve

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Protocol round-trips                                                *)
(* ------------------------------------------------------------------ *)

let fault spec =
  match Mt_resilience.Fault.of_spec spec with
  | Ok f -> f
  | Error msg -> Alcotest.failf "bad fault spec %s: %s" spec msg

let full_submission =
  {
    Protocol.kernel_xml = "<kernel name=\"k\">\n  \"quoted\" & <tags>\n</kernel>";
    machine = Protocol.Inline_xml "<machine>\r\n</machine>";
    array_kb = 48;
    per = "element";
    repetitions = 3;
    experiments = 7;
    run =
      {
        Protocol.seed = Some 42;
        adaptive = Some (0.05, 32);
        retries = 4;
        backoff_base_s = 0.125;
        backoff_max_s = 2.5;
        backoff_jitter = 0.25;
        backoff_seed = 99;
        wall_budget_s = Some 1.5;
        sim_budget = Some 100_000;
        faults = [ fault "variant=2:raise@1"; fault "variant=5:timeout" ];
        profile = true;
        plan = None;
      };
  }

(* A small but fully-populated plan, for wire-fidelity checks: a
   submission carrying a plan must decode to the identical plan. *)
let sample_plan =
  {
    Mt_optimize.Plan.schema = Mt_optimize.Plan.schema_version;
    created_at = 1700000000.5;
    history_dir = "/tmp/hist";
    runs = 6;
    kernel_name = "copy";
    kernel_hash = "kh-1";
    machine_name = "laptop";
    machine_hash = "mh-1";
    knobs = Mt_optimize.Optimizer.default_knobs;
    keep =
      [
        {
          Mt_optimize.Plan.variant = "movss_u1";
          experiments = Some 2;
          stable = true;
          cov = 0.001;
          rciw = 0.002;
          trend = "stationary";
        };
        {
          Mt_optimize.Plan.variant = "movss_u3";
          experiments = None;
          stable = false;
          cov = 0.09;
          rciw = 0.2;
          trend = "drift";
        };
      ];
    drop =
      [
        {
          Mt_optimize.Plan.variant = "movss_u2";
          canary = "movss_u1";
          correlation = 0.99;
        };
      ];
  }

let roundtrip_request req =
  match Protocol.request_of_json (Protocol.request_to_json req) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "request did not decode: %s" msg

let roundtrip_response resp =
  match Protocol.response_of_json (Protocol.response_to_json resp) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "response did not decode: %s" msg

let test_request_roundtrip () =
  List.iter
    (fun req -> check_bool "request survives" true (roundtrip_request req = req))
    [
      Protocol.Submit full_submission;
      Protocol.Submit
        {
          full_submission with
          Protocol.machine = Protocol.Preset "nehalem_x5650_2s";
          run = Protocol.default_run_options;
        };
      Protocol.Submit
        {
          full_submission with
          Protocol.run = { full_submission.run with plan = Some sample_plan };
        };
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Metrics Protocol.Metrics_json;
      Protocol.Metrics Protocol.Metrics_prometheus;
      Protocol.Shutdown;
    ]

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      check_bool "response survives" true (roundtrip_response resp = resp))
    [
      Protocol.Accepted { job = 7; queue_depth = 3 };
      Protocol.Rejected Protocol.Queue_full;
      Protocol.Rejected (Protocol.Bad_request "unknown machine \"zen9\"");
      Protocol.Header [ "variant"; "value"; "unit" ];
      Protocol.Row [ "movss_u2"; "1.125"; "cy/elem" ];
      Protocol.Row [ "has,comma"; "has\"quote"; "has\nnewline" ];
      Protocol.Snapshot
        (Mt_obsv.Json.Obj
           [ ("tool", Mt_obsv.Json.Str "mt_serve"); ("n", Mt_obsv.Json.Num 3.) ]);
      Protocol.Done { job = 7; quarantined = 1; cache_hit_rate = 0.5 };
      Protocol.Failed { job = 8; message = "simulator exploded" };
      Protocol.Pong;
      Protocol.Stats_reply [ ("serve.queue.depth", 2); ("cache.evictions", 0) ];
      Protocol.Metrics_reply
        {
          Protocol.m_counters = [ ("serve.jobs.completed", 5) ];
          m_gauges = [ ("serve.uptime.s", 12.5) ];
          m_summaries =
            [
              ( "serve.job.exec.us",
                {
                  Protocol.m_count = 5;
                  m_sum = 1250.;
                  m_quantiles = [ (0.5, 200.); (0.9, 400.); (0.99, 450.) ];
                } );
            ];
        };
      Protocol.Metrics_text
        "# TYPE serve_jobs_completed counter\nserve_jobs_completed 5\n";
      Protocol.Bye;
    ]

(* The exposition renderer: names sanitised, summaries expanded to
   quantile samples plus _sum/_count — what a scrape sees. *)
let test_prometheus_rendering () =
  let text =
    Protocol.prometheus_of_metrics
      {
        Protocol.m_counters = [ ("serve.jobs.completed", 5) ];
        m_gauges = [ ("serve.uptime.s", 12.5) ];
        m_summaries =
          [
            ( "serve.job.exec.us",
              {
                Protocol.m_count = 5;
                m_sum = 1250.;
                m_quantiles = [ (0.5, 200.) ];
              } );
          ];
      }
  in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "counter sample" true (contains "serve_jobs_completed 5\n");
  check_bool "counter type line" true
    (contains "# TYPE serve_jobs_completed counter\n");
  check_bool "gauge sample" true (contains "serve_uptime_s 12.5\n");
  check_bool "summary quantile" true
    (contains "serve_job_exec_us{quantile=\"0.5\"} 200\n");
  check_bool "summary sum" true (contains "serve_job_exec_us_sum 1250\n");
  check_bool "summary count" true (contains "serve_job_exec_us_count 5\n")

(* The serializable slice survives Run_config -> wire -> Run_config:
   projecting the overlaid config again yields the same wire options. *)
let test_run_options_config_fidelity () =
  let policy =
    Mt_resilience.Policy.make ~retries:4 ~backoff_base_s:0.125
      ~backoff_max_s:2.5 ~backoff_jitter:0.25 ~backoff_seed:99
      ~wall_budget_s:1.5 ~sim_budget:100_000 ()
  in
  let config =
    Microtools.Study.Run_config.make ~seed:42 ~adaptive:(0.05, 32) ~policy
      ~faults:[ fault "variant=2:raise@1" ] ()
  in
  let wire = Protocol.run_options_of_config config in
  let rebuilt =
    Protocol.config_into_base wire Microtools.Study.Run_config.default
  in
  check_bool "projection is a fixpoint" true
    (Protocol.run_options_of_config rebuilt = wire);
  (* The daemon-side fields stay the base's, not the client's. *)
  check_int "domains stay base" 1
    rebuilt.Microtools.Study.Run_config.domains;
  check_bool "no journal leaks over the wire" true
    (rebuilt.Microtools.Study.Run_config.journal_out = None)

let test_framing_one_line_per_message () =
  let buf = Buffer.create 256 in
  let text =
    Protocol.request_to_json (Protocol.Submit full_submission)
    |> Mt_obsv.Json.to_string
  in
  Buffer.add_string buf text;
  (* Kernel XML with raw newlines/CRs must not break line framing. *)
  check_bool "encoded message has no raw newline" true
    (not (String.exists (fun c -> c = '\n' || c = '\r') (Buffer.contents buf)))

(* ------------------------------------------------------------------ *)
(* Jobq back-pressure                                                  *)
(* ------------------------------------------------------------------ *)

let reject_testable =
  Alcotest.testable
    (fun ppf -> function
      | `Queue_full -> Format.pp_print_string ppf "`Queue_full"
      | `Closed -> Format.pp_print_string ppf "`Closed")
    ( = )

let test_jobq_backpressure () =
  let q = Jobq.create ~capacity:2 in
  check_int "capacity" 2 (Jobq.capacity q);
  Alcotest.(check (result unit reject_testable)) "first" (Ok ()) (Jobq.push q 1);
  Alcotest.(check (result unit reject_testable)) "second" (Ok ()) (Jobq.push q 2);
  Alcotest.(check (result unit reject_testable))
    "full queue is a typed rejection" (Error `Queue_full) (Jobq.push q 3);
  check_int "depth" 2 (Jobq.depth q);
  check_bool "fifo pop" true (Jobq.pop q = Some 1);
  Alcotest.(check (result unit reject_testable))
    "slot freed" (Ok ()) (Jobq.push q 3);
  Jobq.close q;
  Alcotest.(check (result unit reject_testable))
    "closed queue rejects" (Error `Closed) (Jobq.push q 4);
  check_bool "drains after close" true (Jobq.pop q = Some 2);
  check_bool "drains after close" true (Jobq.pop q = Some 3);
  check_bool "empty + closed ends" true (Jobq.pop q = None)

let test_jobq_blocking_pop () =
  let q = Jobq.create ~capacity:1 in
  let got = ref None in
  let consumer = Thread.create (fun () -> got := Jobq.pop q) () in
  Thread.delay 0.05;
  Alcotest.(check (result unit reject_testable))
    "push wakes consumer" (Ok ()) (Jobq.push q 42);
  Thread.join consumer;
  check_bool "consumer got the job" true (!got = Some 42)

(* ------------------------------------------------------------------ *)
(* End-to-end: in-process daemon                                       *)
(* ------------------------------------------------------------------ *)

let small_spec =
  Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
    ~unroll:(1, 3) ()

let small_submission =
  {
    Protocol.kernel_xml = Mt_kernels.Streams.description_xml small_spec;
    machine = Protocol.Preset "nehalem_x5650_2s";
    array_kb = 16;
    per = "element";
    repetitions = 1;
    experiments = 2;
    run = Protocol.default_run_options;
  }

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

(* Unix-domain socket paths are length-limited (~108 bytes), so keep
   them directly under the system temp dir. *)
let temp_socket () =
  let path = Filename.temp_file "mtserve" ".sock" in
  Sys.remove path;
  path

let with_daemon ?(workers = 2) ?(queue = 8) ?history_dir ?(log_json = false) f =
  let socket = temp_socket () in
  let cache_dir = temp_dir "mtservecache" in
  let cache = Mt_parallel.Cache.create ~dir:cache_dir () in
  let base = Microtools.Study.Run_config.make ~cache () in
  let config =
    {
      Daemon.socket_path = socket;
      queue_capacity = queue;
      workers;
      state_dir = None;
      history_dir;
      log_json;
      base;
    }
  in
  let daemon = Daemon.create config in
  let server = Thread.create (fun () -> Daemon.serve daemon) () in
  Fun.protect
    ~finally:(fun () ->
      (match Client.shutdown ~socket with _ -> ());
      Daemon.stop daemon;
      Thread.join server;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f ~socket ~daemon)

let one_shot_csv_text () =
  let opts =
    {
      (Mt_launcher.Options.default Mt_machine.Config.nehalem_x5650_2s) with
      Mt_launcher.Options.array_bytes = 16 * 1024;
      per = Mt_launcher.Options.Per_element;
      repetitions = 1;
      experiments = 2;
    }
  in
  match
    Microtools.Study.of_description small_submission.Protocol.kernel_xml opts
  with
  | Error msg -> Alcotest.failf "one-shot study: %s" msg
  | Ok study ->
    let outcomes = Microtools.Study.run study in
    Mt_stats.Csv.to_string (Microtools.Study.csv outcomes)

let test_daemon_end_to_end () =
  with_daemon (fun ~socket ~daemon:_ ->
      (match Client.ping ~socket with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "ping: %s" msg);
      match Client.submit ~socket small_submission with
      | Error msg -> Alcotest.failf "submit: %s" msg
      | Ok summary ->
        check_int "no quarantine" 0 summary.Client.quarantined;
        check_bool "snapshot streamed" true (summary.Client.snapshot <> None);
        (match summary.Client.csv with
        | None -> Alcotest.fail "no CSV streamed"
        | Some doc ->
          check_int "one row per variant" 14 (Mt_stats.Csv.row_count doc);
          check_string "streamed CSV is byte-identical to one-shot"
            (one_shot_csv_text ())
            (Mt_stats.Csv.to_string doc));
        (* Same study again: every variant must now come from the shared
           cache. *)
        (match Client.submit ~socket small_submission with
        | Error msg -> Alcotest.failf "resubmit: %s" msg
        | Ok again ->
          check_string "repeat run streams identical bytes"
            (one_shot_csv_text ())
            (Mt_stats.Csv.to_string (Option.get again.Client.csv));
          check_bool "repeat run hits the shared cache" true
            (again.Client.cache_hit_rate > 0.));
        match Client.stats ~socket with
        | Error msg -> Alcotest.failf "stats: %s" msg
        | Ok counters ->
          let get k =
            match List.assoc_opt k counters with
            | Some v -> v
            | None -> Alcotest.failf "missing counter %s" k
          in
          check_int "both jobs completed" 2 (get "serve.jobs.completed");
          check_int "no failures" 0 (get "serve.jobs.failed");
          check_bool "cache served repeats" true (get "cache.hits" > 0))

let test_daemon_concurrent_clients () =
  with_daemon ~workers:2 (fun ~socket ~daemon:_ ->
      let expected = one_shot_csv_text () in
      let results = Array.make 4 (Error "never ran") in
      let clients =
        Array.init 4 (fun i ->
            Thread.create
              (fun () -> results.(i) <- Client.submit ~socket small_submission)
              ())
      in
      Array.iter Thread.join clients;
      Array.iteri
        (fun i result ->
          match result with
          | Error msg -> Alcotest.failf "client %d: %s" i msg
          | Ok summary ->
            check_string
              (Printf.sprintf "client %d CSV byte-identical" i)
              expected
              (Mt_stats.Csv.to_string (Option.get summary.Client.csv)))
        results)

let test_daemon_bad_request () =
  with_daemon (fun ~socket ~daemon:_ ->
      let bad =
        { small_submission with Protocol.machine = Protocol.Preset "zen9" }
      in
      match Client.submit ~socket bad with
      | Ok _ -> Alcotest.fail "unknown machine was accepted"
      | Error msg ->
        let contains needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        check_bool "typed bad-request names the machine" true
          (contains "zen9" msg))

let string_contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* The metrics endpoint end to end, with a live telemetry handle so
   the job-latency histograms actually record (a daemon always enables
   one; the test runner's default is disabled, so install and restore). *)
let test_daemon_metrics_endpoint () =
  let prev = Mt_telemetry.global () in
  Mt_telemetry.set_global (Mt_telemetry.create ());
  Fun.protect
    ~finally:(fun () -> Mt_telemetry.set_global prev)
    (fun () ->
      with_daemon (fun ~socket ~daemon:_ ->
          (match Client.submit ~socket small_submission with
          | Error msg -> Alcotest.failf "submit: %s" msg
          | Ok _ -> ());
          (match Client.metrics ~socket with
          | Error msg -> Alcotest.failf "metrics: %s" msg
          | Ok m ->
            check_int "completed counter" 1
              (List.assoc "serve.jobs.completed" m.Protocol.m_counters);
            check_bool "uptime gauge present" true
              (List.mem_assoc "serve.uptime.s" m.Protocol.m_gauges);
            (match List.assoc_opt "serve.job.exec.us" m.Protocol.m_summaries with
            | None -> Alcotest.fail "no exec-latency summary"
            | Some s ->
              check_int "one observation" 1 s.Protocol.m_count;
              check_bool "p50 present" true
                (List.mem_assoc 0.5 s.Protocol.m_quantiles)));
          (match Client.stats ~socket with
          | Error msg -> Alcotest.failf "stats: %s" msg
          | Ok counters ->
            check_bool "stats carries p50 exec latency" true
              (List.mem_assoc "serve.job.exec.us.p50" counters);
            check_bool "stats carries uptime" true
              (List.mem_assoc "serve.uptime.s" counters));
          match Client.metrics_text ~socket with
          | Error msg -> Alcotest.failf "metrics text: %s" msg
          | Ok text ->
            check_bool "exposition has jobs-completed counter" true
              (string_contains "serve_jobs_completed 1\n" text);
            check_bool "exposition has exec-latency summary" true
              (string_contains "# TYPE serve_job_exec_us summary" text)))

(* --history-dir: every completed job lands in the archive, in order. *)
let test_daemon_history_archive () =
  let dir = temp_dir "mtservehist" in
  with_daemon ~history_dir:dir (fun ~socket ~daemon:_ ->
      List.iter
        (fun _ ->
          match Client.submit ~socket small_submission with
          | Error msg -> Alcotest.failf "submit: %s" msg
          | Ok _ -> ())
        [ (); () ];
      match Mt_obsv.History.load dir with
      | Error msg -> Alcotest.failf "history load: %s" msg
      | Ok hist ->
        check_int "two archived runs" 2 (Mt_obsv.History.length hist);
        let entries = Mt_obsv.History.entries hist in
        check_bool "sequence numbers ascend from 1" true
          (List.map (fun e -> e.Mt_obsv.History.seq) entries = [ 1; 2 ]);
        List.iter
          (fun e ->
            match Mt_obsv.History.snapshot hist e with
            | Error msg -> Alcotest.failf "archived snapshot: %s" msg
            | Ok snap ->
              check_string "archived by the daemon" "mt_serve"
                snap.Mt_obsv.Snapshot.tool)
          entries)

let test_daemon_rejects_live_socket_reuse () =
  with_daemon (fun ~socket ~daemon:_ ->
      check_bool "second daemon on a live socket refuses" true
        (try
           ignore
             (Daemon.create
                {
                  (Daemon.default_config socket) with
                  Daemon.base = Microtools.Study.Run_config.default;
                });
           false
         with Failure _ -> true))

let suite =
  [
    Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "run_options/config fidelity" `Quick
      test_run_options_config_fidelity;
    Alcotest.test_case "one line per message" `Quick
      test_framing_one_line_per_message;
    Alcotest.test_case "jobq back-pressure" `Quick test_jobq_backpressure;
    Alcotest.test_case "jobq blocking pop" `Quick test_jobq_blocking_pop;
    Alcotest.test_case "daemon end to end" `Quick test_daemon_end_to_end;
    Alcotest.test_case "daemon concurrent clients" `Quick
      test_daemon_concurrent_clients;
    Alcotest.test_case "daemon bad request" `Quick test_daemon_bad_request;
    Alcotest.test_case "prometheus rendering" `Quick test_prometheus_rendering;
    Alcotest.test_case "daemon metrics endpoint" `Quick
      test_daemon_metrics_endpoint;
    Alcotest.test_case "daemon history archive" `Quick
      test_daemon_history_archive;
    Alcotest.test_case "daemon refuses live socket" `Quick
      test_daemon_rejects_live_socket_reuse;
  ]
