(* Tests for the statistics and CSV substrate. *)

module S = Mt_stats

let checkf = Alcotest.(check (float 1e-9))

let check_int = Alcotest.(check int)

let xs = [| 4.; 1.; 3.; 2. |]

let test_min_max () =
  checkf "min" 1. (S.min_of xs);
  checkf "max" 4. (S.max_of xs)

let test_mean () = checkf "mean" 2.5 (S.mean xs)

let test_median_even () = checkf "median even" 2.5 (S.median xs)

let test_median_odd () = checkf "median odd" 2. (S.median [| 5.; 1.; 2. |])

let test_median_single () = checkf "median single" 7. (S.median [| 7. |])

let test_stddev () =
  (* Sample stddev of 1,2,3,4 = sqrt(5/3). *)
  checkf "stddev" (sqrt (5. /. 3.)) (S.stddev xs)

let test_stddev_short () = checkf "stddev n=1" 0. (S.stddev [| 3. |])

let test_cv () =
  checkf "cv" (sqrt (5. /. 3.) /. 2.5) (S.coefficient_of_variation xs)

let test_cv_zero_mean () =
  checkf "cv zero mean" 0. (S.coefficient_of_variation [| 1.; -1. |])

let test_cv_negative_mean () =
  (* Dispersion has no sign: a negated series has exactly the CoV of
     the original, not its negation (which would flip the noise band in
     Mt_obsv.Diff and flag every comparison as a regression). *)
  let neg = Array.map (fun x -> -.x) xs in
  checkf "cv of negated series"
    (S.coefficient_of_variation xs)
    (S.coefficient_of_variation neg);
  Alcotest.(check bool)
    "cv non-negative" true
    (S.coefficient_of_variation neg >= 0.)

let test_pooled_cov_negative_mean () =
  let groups = [ (10, 5., 2.); (10, 7., 3.) ] in
  let negated = List.map (fun (n, m, s) -> (n, -.m, s)) groups in
  checkf "pooled cov sign-invariant" (S.pooled_cov groups)
    (S.pooled_cov negated);
  Alcotest.(check bool)
    "pooled cov non-negative" true
    (S.pooled_cov negated >= 0.)

let test_relative_spread_negative_min () =
  (* min = -4, max = -1: spread 3 relative to |min|. *)
  checkf "spread negative series" 0.75
    (S.relative_spread [| -4.; -1.; -3.; -2. |])

let test_pooled_stddev () =
  (* Equal groups with equal spread pool to that spread. *)
  checkf "equal groups" 5. (S.pooled_stddev [ (10, 5.); (10, 5.) ]);
  (* Weighted by degrees of freedom: sqrt((9*4^2 + 1*8^2)/10). *)
  checkf "dof weighting"
    (sqrt ((9. *. 16.) +. 64.) /. sqrt 10.)
    (S.pooled_stddev [ (10, 4.); (2, 8.) ]);
  checkf "no degrees of freedom" 0. (S.pooled_stddev [ (1, 3.); (1, 9.) ]);
  checkf "empty" 0. (S.pooled_stddev [])

let test_pooled_cov () =
  (* Two runs of the same noisy measurement: pooled spread over the
     grand mean. *)
  checkf "two runs" (5. /. 101.) (S.pooled_cov [ (10, 100., 5.); (10, 102., 5.) ]);
  checkf "zero variance" 0. (S.pooled_cov [ (10, 100., 0.); (10, 100., 0.) ]);
  checkf "zero grand mean" 0. (S.pooled_cov [ (4, 1., 1.); (4, -1., 1.) ]);
  checkf "empty" 0. (S.pooled_cov [])

let test_relative_spread () =
  checkf "spread" 3. (S.relative_spread xs);
  checkf "spread flat" 0. (S.relative_spread [| 2.; 2. |])

let test_percentile () =
  checkf "p0" 1. (S.percentile xs 0.);
  checkf "p100" 4. (S.percentile xs 100.);
  checkf "p50" 2.5 (S.percentile xs 50.)

let test_percentile_out_of_range () =
  Alcotest.check_raises "p>100"
    (Invalid_argument "Mt_stats.percentile: p out of [0,100]") (fun () ->
      ignore (S.percentile xs 101.))

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Mt_stats.summarize: empty array")
    (fun () -> ignore (S.summarize [||]))

let test_summary_consistency () =
  let s = S.summarize xs in
  check_int "count" 4 s.S.count;
  checkf "min" 1. s.S.minimum;
  checkf "max" 4. s.S.maximum;
  checkf "median" 2.5 s.S.median

let test_csv_render () =
  let doc = S.Csv.create ~header:[ "a"; "b" ] in
  S.Csv.add_row doc [ "1"; "x" ];
  S.Csv.add_floats doc [ 2.5; 3.0 ];
  Alcotest.(check string) "render" "a,b\n1,x\n2.5,3\n" (S.Csv.to_string doc)

let test_csv_quoting () =
  let doc = S.Csv.create ~header:[ "v" ] in
  S.Csv.add_row doc [ "has,comma" ];
  S.Csv.add_row doc [ "has\"quote" ];
  Alcotest.(check string) "quoting" "v\n\"has,comma\"\n\"has\"\"quote\"\n"
    (S.Csv.to_string doc)

let test_csv_width_mismatch () =
  let doc = S.Csv.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "width"
    (Invalid_argument "Mt_stats.Csv.add_row: row width 1, header width 2")
    (fun () -> S.Csv.add_row doc [ "only one" ])

let test_csv_row_count () =
  let doc = S.Csv.create ~header:[ "a" ] in
  check_int "empty" 0 (S.Csv.row_count doc);
  S.Csv.add_row doc [ "1" ];
  S.Csv.add_row doc [ "2" ];
  check_int "two" 2 (S.Csv.row_count doc)

let test_csv_bare_cr () =
  (* A \r not followed by \n terminates the record (old-Mac line
     endings, or a final \r with no newline after it) — it must never
     survive as cell data. *)
  Alcotest.(check (result (list (list string)) string))
    "CR-separated records"
    (Ok [ [ "a"; "b" ]; [ "c"; "d" ] ])
    (S.Csv.parse_string "a,b\rc,d");
  Alcotest.(check (result (list (list string)) string))
    "file-final CR"
    (Ok [ [ "a"; "b" ] ])
    (S.Csv.parse_string "a,b\r");
  Alcotest.(check (result (list (list string)) string))
    "mixed terminators"
    (Ok [ [ "a" ]; [ "b" ]; [ "c" ]; [ "d" ] ])
    (S.Csv.parse_string "a\rb\r\nc\nd\r");
  (* Inside quotes a CR is still data, exactly like \n. *)
  Alcotest.(check (result (list (list string)) string))
    "quoted CR is data"
    (Ok [ [ "a\rb" ] ])
    (S.Csv.parse_string "\"a\rb\"")

let test_csv_roundtrip () =
  (* Every RFC-4180 special case in one document: commas, quotes,
     embedded newlines (LF and CRLF), empty cells. *)
  let header = [ "name"; "note" ] in
  let rows =
    [
      [ "plain"; "ordinary" ];
      [ "comma,inside"; "a,b,c" ];
      [ "quote\"inside"; "she said \"hi\"" ];
      [ "newline\ninside"; "line1\r\nline2" ];
      [ ""; "" ];
    ]
  in
  let doc = S.Csv.create ~header in
  List.iter (S.Csv.add_row doc) rows;
  match S.Csv.of_string (S.Csv.to_string doc) with
  | Error msg -> Alcotest.fail msg
  | Ok parsed ->
    Alcotest.(check (list string)) "header" header (S.Csv.header parsed);
    Alcotest.(check (list (list string))) "rows" rows (S.Csv.rows parsed);
    (* And the re-render is byte-identical: quoting is canonical. *)
    Alcotest.(check string) "re-render" (S.Csv.to_string doc)
      (S.Csv.to_string parsed)

let test_csv_parse_errors () =
  (match S.Csv.parse_string "a,\"unterminated\n" with
  | Ok _ -> Alcotest.fail "unterminated quote accepted"
  | Error _ -> ());
  match S.Csv.of_string "a,b\nonly-one\n" with
  | Ok _ -> Alcotest.fail "ragged row accepted"
  | Error _ -> ()

let test_csv_save () =
  let doc = S.Csv.create ~header:[ "x" ] in
  S.Csv.add_row doc [ "42" ];
  let path = Filename.temp_file "mtcsv" ".csv" in
  S.Csv.save doc path;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "saved" "x\n42\n" content

let nonempty_floats =
  QCheck.(list_of_size Gen.(1 -- 40) (float_range (-1e6) 1e6))

let prop_min_le_median_le_max =
  QCheck.Test.make ~count:300 ~name:"min <= median <= max" nonempty_floats
    (fun l ->
      let a = Array.of_list l in
      let s = S.summarize a in
      s.S.minimum <= s.S.median && s.S.median <= s.S.maximum)

let prop_mean_bounded =
  QCheck.Test.make ~count:300 ~name:"mean within [min, max]" nonempty_floats
    (fun l ->
      let a = Array.of_list l in
      let s = S.summarize a in
      s.S.minimum -. 1e-9 <= s.S.mean && s.S.mean <= s.S.maximum +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile is monotone in p"
    QCheck.(pair nonempty_floats (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (l, (p1, p2)) ->
      let a = Array.of_list l in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      S.percentile a lo <= S.percentile a hi +. 1e-9)

let prop_stddev_nonneg =
  QCheck.Test.make ~count:300 ~name:"stddev >= 0" nonempty_floats (fun l ->
      S.stddev (Array.of_list l) >= 0.)

(* ------------------------------------------------------------------ *)
(* Spearman rank correlation                                           *)
(* ------------------------------------------------------------------ *)

let test_spearman_monotone () =
  (* Any strictly monotone relation is rank-perfect, linear or not. *)
  checkf "monotone nonlinear is 1.0" 1.
    (S.spearman [| 1.; 2.; 3.; 4. |] [| 1.; 4.; 9.; 16. |]);
  checkf "reversed order is -1.0" (-1.)
    (S.spearman [| 1.; 2.; 3.; 4. |] [| 8.; 6.; 4.; 2. |])

let test_spearman_ties_average_rank () =
  (* Ranks x = [1;2;3;4]; the tied pair in y shares rank 1.5, so ranks
     y = [1.5;1.5;3;4].  Pearson of those rank vectors is
     4.5 / sqrt(5 * 4.5) = 3 / sqrt(10). *)
  let rho = S.spearman [| 1.; 2.; 3.; 4. |] [| 5.; 5.; 7.; 9. |] in
  checkf "ties take their average rank" (3. /. sqrt 10.) rho

let test_spearman_degenerate () =
  checkf "both constant is 1.0" 1. (S.spearman [| 3.; 3.; 3. |] [| 7.; 7.; 7. |]);
  checkf "constant vs moving is 0.0" 0.
    (S.spearman [| 3.; 3.; 3. |] [| 1.; 2.; 3. |]);
  checkf "shorter than 2 is 0.0" 0. (S.spearman [| 1. |] [| 2. |]);
  Alcotest.check_raises "length mismatch raises"
    (Invalid_argument "Mt_stats.spearman: length mismatch")
    (fun () -> ignore (S.spearman [| 1.; 2. |] [| 1. |]))

let spearman_series =
  QCheck.(list_of_size Gen.(2 -- 30) (float_range (-1e6) 1e6))

let prop_spearman_self =
  QCheck.Test.make ~count:300 ~name:"spearman self-correlation is 1.0"
    spearman_series (fun l ->
      let xs = Array.of_list l in
      abs_float (S.spearman xs xs -. 1.0) < 1e-9)

let prop_spearman_symmetric =
  QCheck.Test.make ~count:300 ~name:"spearman is argument-symmetric"
    QCheck.(pair spearman_series spearman_series)
    (fun (la, lb) ->
      let n = min (List.length la) (List.length lb) in
      let take l = Array.of_list (List.filteri (fun i _ -> i < n) l) in
      let xs = take la and ys = take lb in
      abs_float (S.spearman xs ys -. S.spearman ys xs) < 1e-9)

let prop_spearman_bounded =
  QCheck.Test.make ~count:300 ~name:"spearman stays in [-1, 1]"
    QCheck.(pair spearman_series spearman_series)
    (fun (la, lb) ->
      let n = min (List.length la) (List.length lb) in
      let take l = Array.of_list (List.filteri (fun i _ -> i < n) l) in
      let rho = S.spearman (take la) (take lb) in
      rho >= -1.0 -. 1e-9 && rho <= 1.0 +. 1e-9)

let tests =
  [
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "median single" `Quick test_median_single;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "stddev short" `Quick test_stddev_short;
    Alcotest.test_case "coefficient of variation" `Quick test_cv;
    Alcotest.test_case "cv zero mean" `Quick test_cv_zero_mean;
    Alcotest.test_case "cv negative mean" `Quick test_cv_negative_mean;
    Alcotest.test_case "pooled cov negative mean" `Quick
      test_pooled_cov_negative_mean;
    Alcotest.test_case "relative spread negative min" `Quick
      test_relative_spread_negative_min;
    Alcotest.test_case "pooled stddev" `Quick test_pooled_stddev;
    Alcotest.test_case "pooled cov" `Quick test_pooled_cov;
    Alcotest.test_case "relative spread" `Quick test_relative_spread;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile bounds" `Quick test_percentile_out_of_range;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "summary consistency" `Quick test_summary_consistency;
    Alcotest.test_case "csv render" `Quick test_csv_render;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "csv width mismatch" `Quick test_csv_width_mismatch;
    Alcotest.test_case "csv row count" `Quick test_csv_row_count;
    Alcotest.test_case "csv bare CR" `Quick test_csv_bare_cr;
    Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv parse errors" `Quick test_csv_parse_errors;
    Alcotest.test_case "csv save" `Quick test_csv_save;
    Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
    Alcotest.test_case "spearman ties" `Quick test_spearman_ties_average_rank;
    Alcotest.test_case "spearman degenerate" `Quick test_spearman_degenerate;
    QCheck_alcotest.to_alcotest prop_spearman_self;
    QCheck_alcotest.to_alcotest prop_spearman_symmetric;
    QCheck_alcotest.to_alcotest prop_spearman_bounded;
    QCheck_alcotest.to_alcotest prop_min_le_median_le_max;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_stddev_nonneg;
  ]
