(* Tests for the umbrella Study workflow and the experiment tables. *)

open Mt_machine
open Mt_creator
open Mt_launcher

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let x5650 = Config.nehalem_x5650_2s

let quick_opts =
  {
    (Options.default x5650) with
    Options.array_bytes = 16 * 1024;
    repetitions = 1;
    experiments = 2;
  }

let small_spec =
  Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
    ~unroll:(1, 3) ()

let test_study_generates_once () =
  let study = Microtools.Study.create small_spec quick_opts in
  let a = Microtools.Study.variants study in
  let b = Microtools.Study.variants study in
  check_bool "cached" true (a == b);
  (* Sum of 2^u for u in 1..3. *)
  check_int "variant count" 14 (List.length a)

let test_study_run_all () =
  let study = Microtools.Study.create small_spec quick_opts in
  let outcomes = Microtools.Study.run study in
  check_int "all measured" 14 (List.length outcomes);
  check_int "all succeeded" 14 (List.length (Microtools.Study.successes outcomes))

let test_study_best_and_groups () =
  let study =
    Microtools.Study.create small_spec
      { quick_opts with Options.per = Options.Per_element }
  in
  let outcomes = Microtools.Study.run study in
  (match Microtools.Study.best outcomes with
  | None -> Alcotest.fail "no best"
  | Some (v, r) ->
    check_bool "best is cheapest" true
      (List.for_all
         (fun (_, r') -> r.Report.value <= r'.Report.value)
         (Microtools.Study.successes outcomes));
    check_bool "unrolled wins per element" true (v.Variant.unroll > 1));
  let groups = Microtools.Study.by_unroll outcomes in
  check_int "three groups" 3 (List.length groups);
  List.iter
    (fun (u, members) -> check_int "group size 2^u" (1 lsl u) (List.length members))
    groups

let test_study_min_per_unroll () =
  let study = Microtools.Study.create small_spec quick_opts in
  let outcomes = Microtools.Study.run study in
  let mins = Microtools.Study.min_per_unroll outcomes in
  check_int "three entries" 3 (List.length mins);
  List.iter (fun (_, v) -> check_bool "positive" true (v > 0.)) mins

let test_study_of_description () =
  let xml = Mt_kernels.Streams.description_xml small_spec in
  match Microtools.Study.of_description xml quick_opts with
  | Error msg -> Alcotest.fail msg
  | Ok study -> check_int "variants" 14 (List.length (Microtools.Study.variants study))

let test_study_csv () =
  let study = Microtools.Study.create small_spec quick_opts in
  let outcomes = Microtools.Study.run study in
  let csv = Microtools.Study.csv outcomes in
  check_int "one row per variant" 14 (Mt_stats.Csv.row_count csv)

(* ------------------------------------------------------------------ *)
(* Exp_table                                                           *)
(* ------------------------------------------------------------------ *)

let test_exp_table_width_check () =
  check_bool "mismatched row rejected" true
    (try
       ignore
         (Microtools.Exp_table.make ~id:"x" ~title:"t" ~columns:[ "a"; "b" ]
            ~expectation:"e" [ [ "only" ] ]);
       false
     with Invalid_argument _ -> true)

let test_exp_table_print () =
  let t =
    Microtools.Exp_table.make ~id:"x" ~title:"t" ~columns:[ "a"; "b" ]
      ~expectation:"paper says so" ~observations:[ "we measured it" ]
      [ [ "1"; "2" ] ]
  in
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Microtools.Exp_table.print fmt t;
  Format.pp_print_flush fmt ();
  let text = Buffer.contents buf in
  check_bool "has title" true (String.length text > 0);
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_bool "expectation" true (contains "paper says so");
  check_bool "observation" true (contains "we measured it")

(* ------------------------------------------------------------------ *)
(* Experiments (quick mode)                                            *)
(* ------------------------------------------------------------------ *)

let test_experiment_registry () =
  check_int "twenty experiments" 20 (List.length Microtools.Experiments.ids);
  check_bool "lookup works" true (Microtools.Experiments.by_id "fig11" <> None);
  check_bool "unknown" true (Microtools.Experiments.by_id "fig99" = None)

let test_gen_counts_experiment () =
  let t = Microtools.Experiments.gen_counts () in
  (* The table carries the measured counts; check the 510 row. *)
  let row =
    List.find (fun r -> List.hd r = "(Load|Store)+ variants") t.Microtools.Exp_table.rows
  in
  Alcotest.(check string) "measured 510" "510" (List.nth row 2)

let test_tab01_static () =
  let t = Microtools.Experiments.tab01 () in
  check_int "three machines" 3 (List.length t.Microtools.Exp_table.rows)

let test_fig13_invariance_quick () =
  let t = Microtools.Experiments.fig13 ~quick:true () in
  (* RAM column constant across frequencies within 2%. *)
  let ram_values =
    List.map
      (fun row -> float_of_string (List.nth row 4))
      t.Microtools.Exp_table.rows
  in
  match ram_values with
  | a :: rest ->
    List.iter
      (fun b -> check_bool "RAM frequency-invariant" true (Float.abs (b -. a) /. a < 0.02))
      rest
  | [] -> Alcotest.fail "no rows"

let test_fig14_knee_quick () =
  let t = Microtools.Experiments.fig14 ~quick:true () in
  let value cores =
    List.find_map
      (fun row ->
        if List.hd row = string_of_int cores then Some (float_of_string (List.nth row 1))
        else None)
      t.Microtools.Exp_table.rows
  in
  match value 1, value 6, value 12 with
  | Some one, Some six, Some twelve ->
    check_bool "flat to 6" true (six < one *. 1.1);
    check_bool "rises past 6" true (twelve > six *. 1.5)
  | _ -> Alcotest.fail "missing rows"

(* ------------------------------------------------------------------ *)
(* Ascii_plot                                                          *)
(* ------------------------------------------------------------------ *)

let test_plot_empty () =
  Alcotest.(check string) "note" "(no data to plot)\n" (Microtools.Ascii_plot.render [])

let test_plot_markers_and_labels () =
  let chart =
    Microtools.Ascii_plot.render ~width:20 ~height:6 ~x_label:"n" ~y_label:"c"
      [
        { Microtools.Ascii_plot.label = "a"; points = [ (1., 1.); (2., 2.) ] };
        { Microtools.Ascii_plot.label = "b"; points = [ (1., 2.); (2., 1.) ] };
      ]
  in
  check_bool "marker a" true (String.contains chart '*');
  check_bool "marker b" true (String.contains chart '+');
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length chart
      && (String.sub chart i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_bool "legend a" true (contains "* a");
  check_bool "legend b" true (contains "+ b");
  check_bool "x label" true (contains "(n)")

let test_plot_log_scale () =
  let chart =
    Microtools.Ascii_plot.render ~width:20 ~height:6 ~log_y:true
      [ { Microtools.Ascii_plot.label = "s"; points = [ (1., 1.); (2., 100.) ] } ]
  in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length chart
      && (String.sub chart i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_bool "log annotation" true (contains "log scale");
  (* The midpoint of a log axis between 1 and 100 is 10. *)
  check_bool "geometric midpoint labelled" true (contains "10")

let test_plot_of_table () =
  let t =
    Microtools.Exp_table.make ~id:"x" ~title:"t" ~columns:[ "n"; "v"; "w" ]
      ~expectation:"e"
      [ [ "1"; "2.0"; "oops" ]; [ "2"; "3.0"; "4.0" ] ]
  in
  match Microtools.Ascii_plot.of_table ~x_column:0 ~y_columns:[ (1, "v"); (2, "w") ] t with
  | [ v; w ] ->
    check_int "v keeps both rows" 2 (List.length v.Microtools.Ascii_plot.points);
    check_int "w skips the bad cell" 1 (List.length w.Microtools.Ascii_plot.points)
  | _ -> Alcotest.fail "two series expected"

let tests =
  [
    Alcotest.test_case "study generates once" `Quick test_study_generates_once;
    Alcotest.test_case "study run all" `Quick test_study_run_all;
    Alcotest.test_case "study best and groups" `Quick test_study_best_and_groups;
    Alcotest.test_case "study min per unroll" `Quick test_study_min_per_unroll;
    Alcotest.test_case "study from description" `Quick test_study_of_description;
    Alcotest.test_case "study csv" `Quick test_study_csv;
    Alcotest.test_case "exp table width check" `Quick test_exp_table_width_check;
    Alcotest.test_case "exp table print" `Quick test_exp_table_print;
    Alcotest.test_case "experiment registry" `Quick test_experiment_registry;
    Alcotest.test_case "gen_counts experiment" `Quick test_gen_counts_experiment;
    Alcotest.test_case "tab01 static" `Quick test_tab01_static;
    Alcotest.test_case "fig13 RAM invariance (quick)" `Slow test_fig13_invariance_quick;
    Alcotest.test_case "fig14 knee (quick)" `Slow test_fig14_knee_quick;
    Alcotest.test_case "plot: empty" `Quick test_plot_empty;
    Alcotest.test_case "plot: markers and labels" `Quick test_plot_markers_and_labels;
    Alcotest.test_case "plot: log scale" `Quick test_plot_log_scale;
    Alcotest.test_case "plot: of_table" `Quick test_plot_of_table;
  ]
