(* Tests for mt_telemetry: counters, histograms, span nesting, the
   disabled no-op, counter atomicity under the Domain pool, and
   well-formed Chrome-trace JSON. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* A tiny JSON syntax checker (the subset Chrome traces use): raises   *)
(* on the first malformed byte, so a passing run means the whole       *)
(* document parses.                                                    *)
(* ------------------------------------------------------------------ *)

exception Bad_json of int

let validate_json s =
  let n = String.length s in
  let rec ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r')
    then ws (i + 1)
    else i
  in
  let expect c i = if i < n && s.[i] = c then i + 1 else raise (Bad_json i) in
  let lit word i =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l else raise (Bad_json i)
  in
  let number i =
    let j = ref i in
    let digit c = c >= '0' && c <= '9' in
    if !j < n && s.[!j] = '-' then Stdlib.incr j;
    while
      !j < n
      && (digit s.[!j] || s.[!j] = '.' || s.[!j] = 'e' || s.[!j] = 'E'
         || s.[!j] = '+' || s.[!j] = '-')
    do
      Stdlib.incr j
    done;
    if !j = i then raise (Bad_json i) else !j
  in
  let rec string_lit i =
    if i >= n then raise (Bad_json i)
    else
      match s.[i] with
      | '"' -> i + 1
      | '\\' ->
        if i + 1 >= n then raise (Bad_json i)
        else (
          match s.[i + 1] with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> string_lit (i + 2)
          | 'u' -> if i + 5 < n then string_lit (i + 6) else raise (Bad_json i)
          | _ -> raise (Bad_json i))
      | c when Char.code c < 0x20 -> raise (Bad_json i)
      | _ -> string_lit (i + 1)
  in
  let rec value i =
    let i = ws i in
    if i >= n then raise (Bad_json i)
    else
      match s.[i] with
      | '{' -> obj (ws (i + 1))
      | '[' -> arr (ws (i + 1))
      | '"' -> string_lit (i + 1)
      | 't' -> lit "true" i
      | 'f' -> lit "false" i
      | 'n' -> lit "null" i
      | '-' | '0' .. '9' -> number i
      | _ -> raise (Bad_json i)
  and obj i =
    if i < n && s.[i] = '}' then i + 1
    else
      let rec member i =
        let i = ws i in
        let i = expect '"' i in
        let i = string_lit i in
        let i = expect ':' (ws i) in
        let i = ws (value i) in
        if i < n && s.[i] = ',' then member (i + 1) else expect '}' i
      in
      member i
  and arr i =
    if i < n && s.[i] = ']' then i + 1
    else
      let rec elt i =
        let i = ws (value i) in
        if i < n && s.[i] = ',' then elt (i + 1) else expect ']' i
      in
      elt i
  in
  let i = ws (value 0) in
  if i <> n then raise (Bad_json i)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                             *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let t = Mt_telemetry.create () in
  Mt_telemetry.incr t "b.count";
  Mt_telemetry.add t "a.count" 41;
  Mt_telemetry.incr t "a.count";
  check_int "accumulated" 42 (Mt_telemetry.counter t "a.count");
  check_int "unknown name" 0 (Mt_telemetry.counter t "nope");
  check_bool "sorted by name" true
    (Mt_telemetry.counters t = [ ("a.count", 42); ("b.count", 1) ])

let test_histograms () =
  let t = Mt_telemetry.create () in
  List.iter (Mt_telemetry.observe t "lat") [ 4.; 1.; 7. ];
  match Mt_telemetry.histograms t with
  | [ ("lat", h) ] ->
    check_int "count" 3 h.Mt_telemetry.count;
    Alcotest.(check (float 1e-9)) "sum" 12. h.Mt_telemetry.sum;
    Alcotest.(check (float 1e-9)) "min" 1. h.Mt_telemetry.minimum;
    Alcotest.(check (float 1e-9)) "max" 7. h.Mt_telemetry.maximum
  | other -> Alcotest.fail (Printf.sprintf "%d histograms" (List.length other))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let t = Mt_telemetry.create () in
  let r =
    Mt_telemetry.span t "outer" (fun () ->
        Mt_telemetry.span t "inner" (fun () -> 7))
  in
  check_int "span returns the body's value" 7 r;
  match Mt_telemetry.events t with
  | [ inner; outer ] ->
    (* Completion order: the inner span finishes first. *)
    Alcotest.(check string) "inner name" "inner" inner.Mt_telemetry.name;
    Alcotest.(check string) "outer name" "outer" outer.Mt_telemetry.name;
    check_int "outer depth" 0 outer.Mt_telemetry.depth;
    check_int "inner depth" 1 inner.Mt_telemetry.depth;
    check_bool "inner starts after outer" true
      (inner.Mt_telemetry.start_us >= outer.Mt_telemetry.start_us);
    check_bool "inner ends before outer" true
      (inner.Mt_telemetry.start_us +. inner.Mt_telemetry.dur_us
      <= outer.Mt_telemetry.start_us +. outer.Mt_telemetry.dur_us)
  | other -> Alcotest.fail (Printf.sprintf "%d events" (List.length other))

let test_span_records_on_exception () =
  let t = Mt_telemetry.create () in
  (match Mt_telemetry.span t "doomed" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected the exception to re-raise"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
  check_int "span still recorded" 1 (List.length (Mt_telemetry.events t));
  (* the nesting depth unwinds even on the exception path *)
  Mt_telemetry.span t "after" (fun () -> ());
  match Mt_telemetry.events t with
  | [ _; after ] -> check_int "depth restored" 0 after.Mt_telemetry.depth
  | _ -> Alcotest.fail "expected two events"

(* ------------------------------------------------------------------ *)
(* Disabled handle: strictly a no-op                                   *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  let t = Mt_telemetry.disabled in
  check_bool "not enabled" false (Mt_telemetry.enabled t);
  Mt_telemetry.incr t "x";
  Mt_telemetry.add t "x" 100;
  Mt_telemetry.observe t "h" 1.;
  check_int "counter stays 0" 0 (Mt_telemetry.counter t "x");
  check_int "span passes the value through" 9
    (Mt_telemetry.span t "s" (fun () -> 9));
  check_bool "no counters" true (Mt_telemetry.counters t = []);
  check_bool "no histograms" true (Mt_telemetry.histograms t = []);
  check_bool "no events" true (Mt_telemetry.events t = []);
  validate_json (Mt_telemetry.chrome_trace t);
  Alcotest.(check string) "empty metrics" "key,value\n" (Mt_telemetry.metrics_csv t)

let test_global_defaults_disabled () =
  check_bool "global starts disabled" false
    (Mt_telemetry.enabled (Mt_telemetry.global ()))

(* ------------------------------------------------------------------ *)
(* Domain-safety: concurrent increments under Pool.map                 *)
(* ------------------------------------------------------------------ *)

let test_counter_atomicity_under_pool () =
  let t = Mt_telemetry.create () in
  Mt_telemetry.set_global t;
  Fun.protect
    ~finally:(fun () -> Mt_telemetry.set_global Mt_telemetry.disabled)
    (fun () ->
      let items = Array.init 1000 Fun.id in
      ignore
        (Mt_parallel.Pool.map ~domains:4
           (fun _ -> Mt_telemetry.incr (Mt_telemetry.global ()) "test.hits")
           items);
      check_int "no lost increments" 1000 (Mt_telemetry.counter t "test.hits");
      (* the pool's own instrumentation agrees *)
      check_int "pool.items" 1000 (Mt_telemetry.counter t "pool.items");
      check_int "pool.shards" 4 (Mt_telemetry.counter t "pool.shards"))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_is_valid_json () =
  let t = Mt_telemetry.create () in
  Mt_telemetry.span t "quote\"back\\slash\ttab"
    ~args:[ ("variant", "load\"store-u_8") ]
    (fun () -> Mt_telemetry.span t "inner" (fun () -> ()));
  let json = Mt_telemetry.chrome_trace t in
  validate_json json;
  check_bool "has traceEvents" true (contains json "\"traceEvents\"");
  check_bool "complete events" true (contains json "\"ph\":\"X\"");
  check_bool "escaped quote" true (contains json "quote\\\"back\\\\slash")

let test_metrics_csv_content () =
  let t = Mt_telemetry.create () in
  Mt_telemetry.add t "sim.variants" 510;
  Mt_telemetry.observe t "gen.us" 2.;
  Mt_telemetry.observe t "gen.us" 4.;
  let csv = Mt_telemetry.metrics_csv t in
  check_bool "header" true (contains csv "key,value\n");
  check_bool "counter row" true (contains csv "sim.variants,510\n");
  check_bool "histogram count" true (contains csv "gen.us.count,2\n");
  check_bool "histogram mean" true (contains csv "gen.us.mean,3\n")

(* The one-shot binaries' --metrics-out FILE.prom path: the handle's
   counters and histograms render as Prometheus text exposition, and
   the sample values parse back to exactly what the handle holds. *)
let test_metrics_prometheus_roundtrip () =
  let t = Mt_telemetry.create () in
  Mt_telemetry.add t "sim.variants" 510;
  Mt_telemetry.incr t "cache.hits";
  Mt_telemetry.observe t "gen.us" 2.;
  Mt_telemetry.observe t "gen.us" 4.;
  let text = Mt_telemetry.metrics_prometheus t in
  check_bool "counter type line" true
    (contains text "# TYPE sim_variants counter\n");
  check_bool "summary type line" true (contains text "# TYPE gen_us summary\n");
  (* Parse every non-comment line back into (name, value). *)
  let samples =
    List.filter_map
      (fun line ->
        if line = "" || String.length line >= 1 && line.[0] = '#' then None
        else
          match String.rindex_opt line ' ' with
          | None -> None
          | Some idx ->
            Some
              ( String.sub line 0 idx,
                float_of_string (String.sub line (idx + 1) (String.length line - idx - 1)) ))
      (String.split_on_char '\n' text)
  in
  let value name = List.assoc name samples in
  check_bool "counter value round-trips" true (value "sim_variants" = 510.);
  check_bool "second counter round-trips" true (value "cache_hits" = 1.);
  check_bool "summary sum round-trips" true (value "gen_us_sum" = 6.);
  check_bool "summary count round-trips" true (value "gen_us_count" = 2.);
  check_bool "median quantile present" true
    (List.mem_assoc "gen_us{quantile=\"0.5\"}" samples);
  (* The serve-protocol encoder is the same code: reshaping the same
     data through the generic entry point produces identical text. *)
  let generic =
    Mt_telemetry.prometheus_exposition
      ~summaries:[ ("gen.us", (2, 6., [ (0.5, value "gen_us{quantile=\"0.5\"}") ])) ]
      [ ("cache.hits", 1); ("sim.variants", 510) ]
  in
  check_bool "generic encoder emits the same sample lines" true
    (contains generic "sim_variants 510\n"
    && contains generic "gen_us_sum 6\n")

let test_metrics_csv_quotes_fields () =
  let t = Mt_telemetry.create () in
  Mt_telemetry.incr t "weird,name";
  Mt_telemetry.incr t "has\"quote";
  let csv = Mt_telemetry.metrics_csv t in
  (* RFC 4180: fields containing separators or quotes are quoted, with
     embedded quotes doubled — and the document parses back. *)
  check_bool "comma field quoted" true (contains csv "\"weird,name\",1\n");
  check_bool "quote field escaped" true (contains csv "\"has\"\"quote\",1\n");
  match Mt_stats.Csv.parse_string csv with
  | Ok rows ->
    check_bool "round-trips through the CSV parser" true
      (List.mem [ "weird,name"; "1" ] rows && List.mem [ "has\"quote"; "1" ] rows)
  | Error msg -> Alcotest.fail msg

let test_emit_and_series () =
  let t = Mt_telemetry.create () in
  Mt_telemetry.emit t "movss (%rsi), %xmm0"
    ~args:[ ("pc", "3") ]
    ~tid:1_000_000 ~start_us:10. ~dur_us:4.;
  Mt_telemetry.series ~ts_us:14. ~tid:1_000_000 t "cache.L1"
    [ ("hit", 5.); ("miss", 2.) ];
  (match Mt_telemetry.events t with
  | [ e ] ->
    Alcotest.(check string) "explicit name" "movss (%rsi), %xmm0" e.Mt_telemetry.name;
    check_int "explicit tid" 1_000_000 e.Mt_telemetry.tid;
    Alcotest.(check (float 1e-9)) "explicit start" 10. e.Mt_telemetry.start_us;
    Alcotest.(check (float 1e-9)) "explicit duration" 4. e.Mt_telemetry.dur_us
  | other -> Alcotest.fail (Printf.sprintf "%d events" (List.length other)));
  (match Mt_telemetry.samples t with
  | [ s ] ->
    Alcotest.(check string) "series name" "cache.L1" s.Mt_telemetry.series_name;
    Alcotest.(check (float 1e-9)) "series ts" 14. s.Mt_telemetry.ts_us;
    check_bool "values kept" true (s.Mt_telemetry.values = [ ("hit", 5.); ("miss", 2.) ])
  | other -> Alcotest.fail (Printf.sprintf "%d samples" (List.length other)));
  let json = Mt_telemetry.chrome_trace t in
  validate_json json;
  check_bool "counter event" true (contains json "\"ph\":\"C\"");
  check_bool "counter args numeric" true (contains json "\"hit\":5");
  (* disabled handle drops both *)
  Mt_telemetry.emit Mt_telemetry.disabled "x" ~start_us:0. ~dur_us:1.;
  Mt_telemetry.series Mt_telemetry.disabled "s" [ ("v", 1.) ];
  check_bool "disabled records nothing" true
    (Mt_telemetry.samples Mt_telemetry.disabled = [])

let test_detail_levels () =
  check_int "off stride" 0 (Mt_telemetry.sample_stride Mt_telemetry.Off);
  check_int "sampled stride" 64 (Mt_telemetry.sample_stride Mt_telemetry.Sampled);
  check_int "full stride" 1 (Mt_telemetry.sample_stride Mt_telemetry.Full);
  check_bool "default is off" true (Mt_telemetry.detail () = Mt_telemetry.Off);
  List.iter
    (fun d ->
      match Mt_telemetry.detail_of_string (Mt_telemetry.detail_to_string d) with
      | Ok d' -> check_bool "name round-trips" true (d = d')
      | Error msg -> Alcotest.fail msg)
    [ Mt_telemetry.Off; Mt_telemetry.Sampled; Mt_telemetry.Full ];
  (match Mt_telemetry.detail_of_string "bogus" with
  | Ok _ -> Alcotest.fail "accepted bogus detail"
  | Error _ -> ());
  Mt_telemetry.set_detail Mt_telemetry.Sampled;
  Fun.protect
    ~finally:(fun () -> Mt_telemetry.set_detail Mt_telemetry.Off)
    (fun () ->
      check_bool "set_detail sticks" true
        (Mt_telemetry.detail () = Mt_telemetry.Sampled))

let test_timestamps_are_monotonic () =
  let t = Mt_telemetry.create () in
  Mt_telemetry.span t "a" (fun () -> ());
  Mt_telemetry.span t "b" (fun () -> ());
  match Mt_telemetry.events t with
  | [ a; b ] ->
    check_bool "non-negative since epoch" true (a.Mt_telemetry.start_us >= 0.);
    check_bool "second span not earlier" true
      (b.Mt_telemetry.start_us >= a.Mt_telemetry.start_us)
  | other -> Alcotest.fail (Printf.sprintf "%d events" (List.length other))

let tests =
  [
    Alcotest.test_case "counters accumulate" `Quick test_counters;
    Alcotest.test_case "histograms summarize" `Quick test_histograms;
    Alcotest.test_case "spans nest" `Quick test_span_nesting;
    Alcotest.test_case "span records on exception" `Quick
      test_span_records_on_exception;
    Alcotest.test_case "disabled handle is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "global defaults to disabled" `Quick
      test_global_defaults_disabled;
    Alcotest.test_case "counter atomicity under Pool.map" `Quick
      test_counter_atomicity_under_pool;
    Alcotest.test_case "chrome trace is valid JSON" `Quick
      test_chrome_trace_is_valid_json;
    Alcotest.test_case "metrics CSV content" `Quick test_metrics_csv_content;
    Alcotest.test_case "metrics CSV quotes fields" `Quick
      test_metrics_csv_quotes_fields;
    Alcotest.test_case "metrics Prometheus round trip" `Quick
      test_metrics_prometheus_roundtrip;
    Alcotest.test_case "emit and series record lanes" `Quick
      test_emit_and_series;
    Alcotest.test_case "detail levels" `Quick test_detail_levels;
    Alcotest.test_case "timestamps are monotonic" `Quick
      test_timestamps_are_monotonic;
  ]
