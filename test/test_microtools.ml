(* Multi-process cache stress: when re-exec'd with this variable set,
   the binary is one of the concurrent writer processes, not the test
   suite (see Parallel_tests.cache_stress_writer). *)
let () =
  match Sys.getenv_opt "MT_CACHE_STRESS_WRITER" with
  | Some spec -> Parallel_tests.cache_stress_writer spec
  | None -> ()

let () =
  Alcotest.run "microtools"
    [
      ("xml", Xml_tests.tests);
      ("stats", Stats_tests.tests);
      ("isa", Isa_tests.tests);
      ("machine", Machine_tests.tests);
      ("core-sim", Core_sim_tests.tests);
      ("fastpath", Fastpath_tests.tests);
      ("profile", Profile_tests.tests);
      ("creator", Creator_tests.tests);
      ("launcher", Launcher_tests.tests);
      ("openmp", Openmp_tests.tests);
      ("kernels", Kernels_tests.tests);
      ("study", Study_tests.tests);
      ("parallel", Parallel_tests.tests);
      ("resilience", Resilience_tests.tests);
      ("telemetry", Telemetry_tests.tests);
      ("obsv", Obsv_tests.tests);
      ("history", History_tests.tests);
      ("optimize", Optimize_tests.tests);
      ("quality", Quality_tests.tests);
      ("serve", Serve_tests.suite);
      ("extensions", Extensions_tests.tests);
      ("cc", Cc_tests.tests);
      ("mpi", Mpi_tests.tests);
      ("regression", Regression_tests.tests);
      ("misc", Misc_tests.tests);
    ]
