(* Tests for the vendored XML subset parser. *)

module X = Mt_xml

let check = Alcotest.(check string)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let parse s = X.parse_string s

let test_simple_element () =
  let e = parse "<a/>" in
  check "tag" "a" e.X.tag;
  check_int "no children" 0 (List.length e.X.children)

let test_text_content () =
  let e = parse "<a>hello</a>" in
  check "text" "hello" (X.text_content e)

let test_text_trimmed () =
  let e = parse "<a>  spaced out  </a>" in
  check "trimmed" "spaced out" (X.text_content e)

let test_nested () =
  let e = parse "<a><b><c>deep</c></b></a>" in
  match X.find_child e "b" with
  | None -> Alcotest.fail "no <b>"
  | Some b -> (
    match X.find_child b "c" with
    | None -> Alcotest.fail "no <c>"
    | Some c -> check "deep text" "deep" (X.text_content c))

let test_attributes () =
  let e = parse {|<kernel name="loadstore" version="2"/>|} in
  check "name" "loadstore" (Option.get (X.attribute e "name"));
  check "version" "2" (Option.get (X.attribute e "version"));
  check_bool "missing" true (X.attribute e "nope" = None)

let test_attribute_single_quotes () =
  let e = parse "<a k='v'/>" in
  check "single-quoted" "v" (Option.get (X.attribute e "k"))

let test_entities () =
  let e = parse "<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>" in
  check "decoded" {|<x> & "y" 'z'|} (X.text_content e)

let test_numeric_entities () =
  let e = parse "<a>&#65;&#x42;</a>" in
  check "numeric" "AB" (X.text_content e)

let test_entity_in_attribute () =
  let e = parse {|<a k="a&amp;b"/>|} in
  check "attr entity" "a&b" (Option.get (X.attribute e "k"))

let test_comments_skipped () =
  let e = parse "<a><!-- ignore me --><b/></a>" in
  check_int "one child" 1 (List.length (X.children_elements e))

let test_prolog_skipped () =
  let e = parse "<?xml version=\"1.0\"?>\n<a/>" in
  check "root after prolog" "a" e.X.tag

let test_doctype_skipped () =
  let e = parse "<!DOCTYPE kernel>\n<a/>" in
  check "root after doctype" "a" e.X.tag

let test_cdata () =
  let e = parse "<a><![CDATA[<raw> & stuff]]></a>" in
  check "cdata" "<raw> & stuff" (X.text_content e)

let test_find_children_order () =
  let e = parse "<a><i>1</i><other/><i>2</i><i>3</i></a>" in
  let texts = List.map X.text_content (X.find_children e "i") in
  Alcotest.(check (list string)) "document order" [ "1"; "2"; "3" ] texts

let test_child_int () =
  let e = parse "<a><min>3</min><max>8</max></a>" in
  check_int "min" 3 (Option.get (X.child_int e "min"));
  check_int "max" 8 (Option.get (X.child_int e "max"))

let test_child_int_negative () =
  let e = parse "<a><inc>-16</inc></a>" in
  check_int "negative" (-16) (Option.get (X.child_int e "inc"))

let test_child_int_bad () =
  let e = parse "<a><min>three</min></a>" in
  Alcotest.check_raises "non-integer" (X.Parse_error "element <min> inside <a>: \"three\" is not an integer")
    (fun () -> ignore (X.child_int e "min"))

let test_has_child_flag () =
  let e = parse "<i><swap_after_unroll/></i>" in
  check_bool "flag present" true (X.has_child e "swap_after_unroll");
  check_bool "flag absent" false (X.has_child e "swap_before_unroll")

let expect_parse_error input =
  match parse input with
  | exception X.Parse_error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "expected Parse_error for %S" input)

let test_mismatched_tags () = expect_parse_error "<a><b></a></b>"

let test_unterminated () = expect_parse_error "<a><b>"

let test_empty_document () = expect_parse_error "   "

let test_trailing_garbage () = expect_parse_error "<a/><b/>"

let test_unknown_entity () = expect_parse_error "<a>&nope;</a>"

(* Malformed numeric character references must surface as Parse_error
   (with a position), never as an uncaught Invalid_argument/Failure. *)
let test_bad_charrefs () =
  expect_parse_error "<a>&#xZZ;</a>";
  expect_parse_error "<a>&#-5;</a>";
  expect_parse_error "<a>&#;</a>";
  (* Beyond the Unicode range. *)
  expect_parse_error "<a>&#x110000;</a>";
  expect_parse_error "<a>&#99999999999999999999;</a>"

let test_bad_charref_position () =
  match parse "<a>&#xZZ;</a>" with
  | exception X.Parse_error msg ->
    check_bool "names the reference" true
      (let needle = "&#xZZ;" in
       let rec go i =
         i + String.length needle <= String.length msg
         && (String.sub msg i (String.length needle) = needle || go (i + 1))
       in
       go 0);
    check_bool "carries a position" true (String.contains msg ':')
  | _ -> Alcotest.fail "expected Parse_error"

let test_escape () =
  check "escape" "&lt;a&gt; &amp; &quot;b&quot;" (X.escape {|<a> & "b"|})

let test_roundtrip () =
  let doc =
    X.elem ~attrs:[ ("name", "k<1>") ] "kernel"
      [
        X.Element (X.elem_text "operation" "movaps");
        X.Element
          (X.elem "memory"
             [ X.Element (X.elem_text "offset" "0"); X.Element (X.elem "flag" []) ]);
        X.text "loose & text";
      ]
  in
  let reparsed = parse (X.to_string doc) in
  check "tag" "kernel" reparsed.X.tag;
  check "attr survives escaping" "k<1>" (Option.get (X.attribute reparsed "name"));
  check "op" "movaps" (Option.get (X.child_text reparsed "operation"));
  check_bool "nested flag" true
    (X.has_child (Option.get (X.find_child reparsed "memory")) "flag")

let test_parse_file () =
  let path = Filename.temp_file "mtxml" ".xml" in
  let oc = open_out path in
  output_string oc "<kernel><unrolling><min>1</min><max>8</max></unrolling></kernel>";
  close_out oc;
  let e = X.parse_file path in
  Sys.remove path;
  let u = Option.get (X.find_child e "unrolling") in
  check_int "max from file" 8 (Option.get (X.child_int u "max"))

(* Property: any tree built from printable text round-trips. *)
let gen_tree =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "kernel"; "instruction"; "register" ] in
  let text = oneofl [ "x"; "1 < 2 & 3"; "plain"; "\"quoted\"" ] in
  fix
    (fun self depth ->
      if depth = 0 then map (fun t -> X.elem t []) tag
      else
        frequency
          [
            (2, map (fun t -> X.elem t []) tag);
            (2, map2 (fun t s -> X.elem t [ X.text s ]) tag text);
            ( 1,
              map3
                (fun t a b -> X.elem t [ X.Element a; X.Element b ])
                tag (self (depth - 1)) (self (depth - 1)) );
          ])
    3

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"xml print/parse round-trip"
    (QCheck.make gen_tree) (fun tree ->
      let printed = X.to_string tree in
      let reparsed = parse printed in
      X.to_string reparsed = printed)

let tests =
  [
    Alcotest.test_case "simple element" `Quick test_simple_element;
    Alcotest.test_case "text content" `Quick test_text_content;
    Alcotest.test_case "text trimmed" `Quick test_text_trimmed;
    Alcotest.test_case "nested" `Quick test_nested;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "single-quote attribute" `Quick test_attribute_single_quotes;
    Alcotest.test_case "entities" `Quick test_entities;
    Alcotest.test_case "numeric entities" `Quick test_numeric_entities;
    Alcotest.test_case "entity in attribute" `Quick test_entity_in_attribute;
    Alcotest.test_case "comments skipped" `Quick test_comments_skipped;
    Alcotest.test_case "prolog skipped" `Quick test_prolog_skipped;
    Alcotest.test_case "doctype skipped" `Quick test_doctype_skipped;
    Alcotest.test_case "cdata" `Quick test_cdata;
    Alcotest.test_case "find_children order" `Quick test_find_children_order;
    Alcotest.test_case "child_int" `Quick test_child_int;
    Alcotest.test_case "child_int negative" `Quick test_child_int_negative;
    Alcotest.test_case "child_int non-integer" `Quick test_child_int_bad;
    Alcotest.test_case "has_child flags" `Quick test_has_child_flag;
    Alcotest.test_case "mismatched tags rejected" `Quick test_mismatched_tags;
    Alcotest.test_case "unterminated rejected" `Quick test_unterminated;
    Alcotest.test_case "bad charrefs rejected" `Quick test_bad_charrefs;
    Alcotest.test_case "bad charref error position" `Quick
      test_bad_charref_position;
    Alcotest.test_case "empty document rejected" `Quick test_empty_document;
    Alcotest.test_case "trailing garbage rejected" `Quick test_trailing_garbage;
    Alcotest.test_case "unknown entity rejected" `Quick test_unknown_entity;
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "build/print/parse round-trip" `Quick test_roundtrip;
    Alcotest.test_case "parse_file" `Quick test_parse_file;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
